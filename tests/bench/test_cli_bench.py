"""The `repro bench` CLI verb: streams, exit codes, regression gating."""

import io
import json

import pytest

from repro.cli import main


def run_cli_streams(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


BENCH_SOURCE = (
    "from repro.bench import Gate, bench_target\n"
    "@bench_target('demo', output='BENCH_demo.json',\n"
    "              gates=(Gate('summary.speedup', 'higher', 0.2),))\n"
    "def bench(ctx):\n"
    "    return {'summary': {'speedup': 10.0, 'ops': ctx.ops(8000)}}\n"
)


@pytest.fixture
def bench_dir(tmp_path):
    directory = tmp_path / "benchmarks"
    directory.mkdir()
    (directory / "bench_demo.py").write_text(BENCH_SOURCE)
    return directory


def bench_argv(bench_dir, out_dir, *extra):
    return ["bench", "--bench-dir", str(bench_dir),
            "--out-dir", str(out_dir)] + list(extra)


class TestBenchCommand:
    def test_list_shows_targets_and_gates(self, bench_dir, tmp_path):
        code, out, _err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "--list"))
        assert code == 0
        assert "demo" in out and "BENCH_demo.json" in out
        assert "summary.speedup" in out

    def test_run_writes_schema2_report(self, bench_dir, tmp_path):
        code, out, err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "--quick"))
        assert code == 0
        report = json.loads((tmp_path / "BENCH_demo.json").read_text())
        assert report["schema"] == 2
        assert report["quick"] is True
        assert report["metrics"]["summary.speedup"] == 10.0
        assert report["metrics"]["summary.ops"] == 1000  # quick floor
        assert "provenance" in report and "obs_metrics" in report
        assert "BENCH_demo.json" in out
        assert "bench demo" in err  # progress stays on stderr

    def test_compare_against_matching_baseline_passes(self, bench_dir,
                                                      tmp_path):
        run_cli_streams(bench_argv(bench_dir, tmp_path))
        baseline = tmp_path / "BENCH_demo.json"
        code, out, _err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "--compare", str(baseline)))
        assert code == 0
        assert "ok" in out

    def test_injected_regression_fails_the_compare(self, bench_dir,
                                                   tmp_path):
        # The acceptance scenario: inflate the baseline's gated metric
        # beyond tolerance and the comparison must exit non-zero.
        run_cli_streams(bench_argv(bench_dir, tmp_path))
        baseline_path = tmp_path / "BENCH_demo.json"
        baseline = json.loads(baseline_path.read_text())
        baseline["metrics"]["summary.speedup"] = 20.0  # fresh 10.0 = -50%
        baseline_path.write_text(json.dumps(baseline))
        code, out, _err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "--compare", str(baseline_path)))
        assert code == 1
        assert "REGRESSED" in out
        assert "summary.speedup" in out

    def test_compare_loads_baseline_before_overwriting_it(self, bench_dir,
                                                          tmp_path):
        # Comparing against the file the run is about to rewrite must
        # gate against the *old* numbers, not the fresh ones.
        run_cli_streams(bench_argv(bench_dir, tmp_path))
        baseline_path = tmp_path / "BENCH_demo.json"
        baseline = json.loads(baseline_path.read_text())
        baseline["metrics"]["summary.speedup"] = 20.0
        baseline_path.write_text(json.dumps(baseline))
        code, _out, _err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "--compare", str(baseline_path)))
        assert code == 1

    def test_unknown_target_is_a_usage_error(self, bench_dir, tmp_path):
        code, _out, err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "nope"))
        assert code == 2
        assert "unknown benchmark target" in err

    def test_missing_baseline_is_a_usage_error(self, bench_dir, tmp_path):
        code, _out, err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "--compare",
                       str(tmp_path / "absent.json")))
        assert code == 2
        assert "cannot load baseline" in err

    def test_baseline_for_unselected_target_is_a_usage_error(self, bench_dir,
                                                             tmp_path):
        other = tmp_path / "BENCH_other.json"
        other.write_text(json.dumps({"schema": 2, "benchmark": "other",
                                     "metrics": {}, "gates": []}))
        code, _out, err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "--compare", str(other)))
        assert code == 2
        assert "not among the selected targets" in err

    def test_failing_benchmark_body_exits_one(self, bench_dir, tmp_path):
        (bench_dir / "bench_boom.py").write_text(
            "from repro.bench import bench_target\n"
            "@bench_target('boom', output='BENCH_boom.json')\n"
            "def bench(ctx):\n"
            "    raise RuntimeError('kaboom')\n")
        code, _out, err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "boom"))
        assert code == 1
        assert "kaboom" in err

    def test_json_dash_keeps_stdout_pure(self, bench_dir, tmp_path):
        code, out, err = run_cli_streams(
            bench_argv(bench_dir, tmp_path, "--quick", "--json", "-"))
        assert code == 0
        payload = json.loads(out)  # stdout must parse as-is
        assert payload["schema"] == 1
        assert payload["reports"][0]["benchmark"] == "demo"
        assert "BENCH_demo.json" in err  # table diverted to stderr
