"""Target registration and discovery for the bench harness."""

import pytest

from repro.bench import BenchTarget, Gate, bench_target, discover


def _write(tmp_path, name, source):
    (tmp_path / name).write_text(source)


REGISTERED = (
    "from repro.bench import bench_target\n"
    "@bench_target('alpha', output='BENCH_alpha.json')\n"
    "def bench(ctx):\n"
    "    return {'value': 1}\n"
)


class TestGate:
    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError):
            Gate("m", direction="sideways")

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            Gate("m", tolerance=-0.1)

    def test_dict_round_trip(self):
        gate = Gate("summary.speedup", "higher", 0.25)
        revived = Gate.from_dict(gate.to_dict())
        assert (revived.metric, revived.direction, revived.tolerance) == (
            "summary.speedup", "higher", 0.25)


class TestDecorator:
    def test_attaches_target_without_global_state(self):
        @bench_target("t", output="BENCH_t.json")
        def bench(ctx):
            return {}

        target = bench.__bench_target__
        assert isinstance(target, BenchTarget)
        assert target.name == "t" and target.output == "BENCH_t.json"
        assert target.func is bench

    def test_rejects_malformed_output_name(self):
        with pytest.raises(ValueError):
            bench_target("t", output="results.json")
        with pytest.raises(ValueError):
            bench_target("t", output="BENCH_t.txt")


class TestDiscover:
    def test_finds_registered_targets(self, tmp_path):
        _write(tmp_path, "bench_alpha.py", REGISTERED)
        targets = discover(str(tmp_path))
        assert [t.name for t in targets] == ["alpha"]

    def test_skips_unregistered_files(self, tmp_path):
        _write(tmp_path, "bench_alpha.py", REGISTERED)
        _write(tmp_path, "bench_orphan.py", "X = 1\n")
        _write(tmp_path, "not_a_bench.py", "Y = 2\n")
        assert [t.name for t in discover(str(tmp_path))] == ["alpha"]

    def test_duplicate_target_names_raise(self, tmp_path):
        _write(tmp_path, "bench_alpha.py", REGISTERED)
        _write(tmp_path, "bench_beta.py",
               REGISTERED.replace("BENCH_alpha", "BENCH_beta"))
        with pytest.raises(ValueError, match="duplicate"):
            discover(str(tmp_path))

    def test_unknown_requested_name_raises(self, tmp_path):
        _write(tmp_path, "bench_alpha.py", REGISTERED)
        with pytest.raises(KeyError, match="alpha"):
            discover(str(tmp_path), names=["nope"])

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover(str(tmp_path / "nowhere"))

    def test_bench_files_can_import_util_helpers(self, tmp_path):
        # Mirrors benchmarks/conftest.py: shared helpers live next to
        # the bench files and import as plain `_util`.
        _write(tmp_path, "_util.py", "ANSWER = 41\n")
        _write(tmp_path, "bench_alpha.py",
               "from _util import ANSWER\n"
               "from repro.bench import bench_target\n"
               "@bench_target('alpha', output='BENCH_alpha.json')\n"
               "def bench(ctx):\n"
               "    return {'value': ANSWER + 1}\n")
        (target,) = discover(str(tmp_path))
        assert target.func(None) == {"value": 42}
