"""BenchContext budgets, report envelopes, and report loading."""

import json

import pytest

from repro.bench import (
    BENCH_REPORT_SCHEMA_VERSION,
    BenchContext,
    Gate,
    bench_target,
    provenance,
    run_target,
)
from repro.bench.harness import flatten_numeric, load_report
from repro.obs.metrics import MetricsRegistry


class TestBenchContext:
    def test_ops_full_by_default(self):
        assert BenchContext().ops(200_000) == 200_000

    def test_ops_quick_scales_down(self):
        ctx = BenchContext(quick=True)
        assert ctx.ops(200_000) == 20_000
        assert ctx.ops(200_000, quick=5_000) == 5_000
        assert ctx.ops(4_000) == 1_000  # floor

    def test_ops_override_wins(self):
        ctx = BenchContext(quick=True, ops_override=777)
        assert ctx.ops(200_000, quick=5_000) == 777

    def test_best_of_returns_min_elapsed(self):
        calls = []
        ctx = BenchContext()
        best = ctx.best_of(lambda: calls.append(1), repeat=4, warmup=2)
        assert len(calls) == 6  # 2 warmup + 4 timed
        assert best >= 0.0


class TestFlattenNumeric:
    def test_nested_dicts_lists_and_bool_exclusion(self):
        flat = flatten_numeric({
            "a": {"b": 1, "flag": True},
            "xs": [10, {"y": 2.5}],
            "name": "text",
        })
        assert flat == {"a.b": 1, "xs.0": 10, "xs.1.y": 2.5}


class TestRunTarget:
    def _target(self, result):
        @bench_target("demo", output="BENCH_demo.json",
                      gates=(Gate("value", "higher", 0.1),))
        def bench(ctx):
            ctx.metrics.inc("demo.calls")
            return result

        return bench.__bench_target__

    def test_report_envelope(self, tmp_path):
        target = self._target({"value": 3, "nested": {"x": 1.5}})
        ctx = BenchContext(quick=True)
        report, path = run_target(target, ctx, out_dir=str(tmp_path))
        assert report["schema"] == BENCH_REPORT_SCHEMA_VERSION
        assert report["benchmark"] == "demo"
        assert report["quick"] is True
        assert report["gates"] == [
            {"metric": "value", "direction": "higher", "tolerance": 0.1}]
        assert report["result"] == {"value": 3, "nested": {"x": 1.5}}
        assert report["metrics"] == {"value": 3, "nested.x": 1.5}
        assert report["obs_metrics"]["counters"] == {"demo.calls": 1}
        for key in ("host", "platform", "python", "git_sha", "generated_at"):
            assert key in report["provenance"]
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == report

    def test_non_dict_result_rejected(self, tmp_path):
        target = self._target(result=42)
        with pytest.raises(TypeError):
            run_target(target, BenchContext(), out_dir=str(tmp_path))

    def test_load_report_round_trip(self, tmp_path):
        target = self._target({"value": 3})
        _report, path = run_target(target, BenchContext(),
                                   out_dir=str(tmp_path))
        assert load_report(path)["benchmark"] == "demo"

    def test_load_report_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"schema": 1, "benchmark": "old"}))
        with pytest.raises(ValueError, match="regenerate"):
            load_report(str(path))


class TestProvenance:
    def test_git_sha_matches_this_checkout(self):
        stamp = provenance()
        # The bench package lives inside the repo, so rev-parse resolves.
        assert stamp["git_sha"] is None or len(stamp["git_sha"]) == 40

    def test_metrics_registry_defaults_per_context(self):
        a, b = BenchContext(), BenchContext()
        assert a.metrics is not b.metrics
        shared = MetricsRegistry()
        assert BenchContext(metrics=shared).metrics is shared
