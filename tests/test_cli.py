"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "paravirt"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "mcf"
        assert args.mode == "agile"
        assert args.page_size == "4K"


class TestCommands:
    def test_list(self):
        code, text = run_cli(["list"])
        assert code == 0
        assert "memcached" in text
        assert "shsp" in text

    def test_run(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000"])
        assert code == 0
        assert "astar" in text
        assert "agile" in text

    def test_run_verbose_shows_mix(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000",
                              "--verbose"])
        assert code == 0
        assert "miss mix" in text

    def test_run_2m(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000",
                              "--page-size", "2M", "--mode", "nested"])
        assert code == 0
        assert "2M" in text

    def test_run_no_pwc_raises_refs(self):
        _code, with_pwc = run_cli(["run", "--workload", "astar",
                                   "--ops", "4000", "--mode", "shadow"])
        _code, without = run_cli(["run", "--workload", "astar",
                                  "--ops", "4000", "--mode", "shadow",
                                  "--no-pwc"])

        def refs(text):
            line = [l for l in text.splitlines() if l.startswith("astar")][0]
            return float(line.split()[5])

        assert refs(without) > refs(with_pwc)

    def test_compare(self):
        code, text = run_cli(["compare", "--workload", "astar",
                              "--ops", "4000", "--modes", "native,agile"])
        assert code == 0
        assert "native" in text
        assert "agile" in text

    def test_figure5_subset(self):
        code, text = run_cli(["figure5", "--ops", "6000",
                              "--workloads", "astar"])
        assert code == 0
        assert "4K:A" in text
        assert "geomean" in text

    def test_table6_subset(self):
        code, text = run_cli(["table6", "--ops", "6000",
                              "--workloads", "astar"])
        assert code == 0
        assert "Table VI" in text

    def test_tables(self):
        code, text = run_cli(["tables"])
        assert code == 0
        assert "Table I" in text
        assert "Table II" in text
        assert "Table III" in text

    def test_sweep(self):
        code, text = run_cli(["sweep", "--workload", "astar", "--ops", "4000",
                              "--param", "write_threshold", "--values", "1,8"])
        assert code == 0
        assert "write_threshold=1" in text
        assert "write_threshold=8" in text
