"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    """Run the CLI; returns (exit_code, stdout_text). Stderr discarded."""
    code, out_text, _err_text = run_cli_streams(argv)
    return code, out_text


def run_cli_streams(argv):
    """Run the CLI capturing both streams: (code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "paravirt"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "mcf"
        assert args.mode == "agile"
        assert args.page_size == "4K"


class TestCommands:
    def test_list(self):
        code, text = run_cli(["list"])
        assert code == 0
        assert "memcached" in text
        assert "shsp" in text

    def test_run(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000"])
        assert code == 0
        assert "astar" in text
        assert "agile" in text

    def test_run_verbose_shows_mix(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000",
                              "--verbose"])
        assert code == 0
        assert "miss mix" in text

    def test_run_2m(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000",
                              "--page-size", "2M", "--mode", "nested"])
        assert code == 0
        assert "2M" in text

    def test_run_no_pwc_raises_refs(self):
        _code, with_pwc = run_cli(["run", "--workload", "astar",
                                   "--ops", "4000", "--mode", "shadow"])
        _code, without = run_cli(["run", "--workload", "astar",
                                  "--ops", "4000", "--mode", "shadow",
                                  "--no-pwc"])

        def refs(text):
            line = [l for l in text.splitlines() if l.startswith("astar")][0]
            return float(line.split()[5])

        assert refs(without) > refs(with_pwc)

    def test_compare(self):
        code, text = run_cli(["compare", "--workload", "astar",
                              "--ops", "4000", "--modes", "native,agile"])
        assert code == 0
        assert "native" in text
        assert "agile" in text

    def test_figure5_subset(self):
        code, text = run_cli(["figure5", "--ops", "6000",
                              "--workloads", "astar"])
        assert code == 0
        assert "4K:A" in text
        assert "geomean" in text

    def test_table6_subset(self):
        code, text = run_cli(["table6", "--ops", "6000",
                              "--workloads", "astar"])
        assert code == 0
        assert "Table VI" in text

    def test_tables(self):
        code, text = run_cli(["tables"])
        assert code == 0
        assert "Table I" in text
        assert "Table II" in text
        assert "Table III" in text

    def test_policy_sweep(self):
        code, text = run_cli(["policy-sweep", "--workload", "astar",
                              "--ops", "4000",
                              "--param", "write_threshold", "--values", "1,8"])
        assert code == 0
        assert "write_threshold=1" in text
        assert "write_threshold=8" in text


class TestSweepCommand:
    def run_sweep(self, tmp_path, *extra):
        return run_cli_streams(["sweep", "--workloads", "astar",
                                "--modes", "shadow", "--ops", "2000",
                                "--cache-dir", str(tmp_path / "cache"),
                                *extra])

    def test_grid_runs_and_reports(self, tmp_path):
        code, out_text, err_text = self.run_sweep(tmp_path)
        assert code == 0
        assert "Sweep results" in out_text
        assert "astar" in out_text
        assert "1 simulated, 0 cached" in err_text

    def test_warm_cache_rerun_loads_not_simulates(self, tmp_path):
        self.run_sweep(tmp_path)
        code, _out, err_text = self.run_sweep(tmp_path)
        assert code == 0
        assert "0 simulated, 1 cached" in err_text

    def test_no_cache_flag(self, tmp_path):
        self.run_sweep(tmp_path)
        code, _out, err_text = self.run_sweep(tmp_path, "--no-cache")
        assert code == 0
        assert "1 simulated, 0 cached" in err_text

    def test_json_summary_inline(self, tmp_path):
        import json as json_module

        code, out_text, _err = self.run_sweep(tmp_path, "--quiet",
                                              "--json", "-")
        assert code == 0
        payload = json_module.loads(out_text[out_text.index("{"):])
        assert payload["cells"] == 1
        assert payload["results"][0]["status"] in ("ok", "cached")

    def test_json_stdout_is_pure_even_with_progress(self, tmp_path):
        """--json - must emit parseable JSON on stdout while progress
        lines, the results table, and the count summary go to stderr."""
        import json as json_module

        code, out_text, err_text = self.run_sweep(tmp_path, "--json", "-")
        assert code == 0
        payload = json_module.loads(out_text)  # whole stream, not a slice
        assert payload["cells"] == 1
        assert "[1/1]" in err_text
        assert "Sweep results" in err_text
        assert "simulated" in err_text

    def test_json_summary_file(self, tmp_path):
        import json as json_module

        target = tmp_path / "summary.json"
        code, _out, err_text = self.run_sweep(tmp_path, "--json", str(target))
        assert code == 0
        assert "summary written" in err_text
        with open(target, encoding="utf-8") as handle:
            assert json_module.load(handle)["cells"] == 1

    def test_progress_lines_go_to_stderr(self, tmp_path):
        code, out_text, err_text = self.run_sweep(tmp_path)
        assert code == 0
        assert "[1/1] astar/shadow/4K" in err_text
        assert "[1/1]" not in out_text

    def test_trace_dir_writes_cell_payloads(self, tmp_path):
        import json as json_module

        trace_dir = tmp_path / "traces"
        code, _out, err_text = self.run_sweep(
            tmp_path, "--no-cache", "--trace-dir", str(trace_dir))
        assert code == 0
        assert "1 trace payload(s)" in err_text
        files = sorted(trace_dir.glob("*.trace.json"))
        assert len(files) == 1
        with open(files[0], encoding="utf-8") as handle:
            payload = json_module.load(handle)
        assert payload["schema"] == 1
        assert payload["events"]
        assert payload["intervals"]

    def test_rejects_unknown_names(self, tmp_path):
        code, _out, text = run_cli_streams(
            ["sweep", "--workloads", "doom", "--no-cache"])
        assert code == 2 and "unknown workload" in text
        code, _out, text = run_cli_streams(
            ["sweep", "--modes", "paravirt", "--no-cache"])
        assert code == 2 and "unknown mode" in text
        code, _out, text = run_cli_streams(
            ["sweep", "--page-sizes", "8K", "--no-cache"])
        assert code == 2 and "unknown page size" in text
        code, _out, text = run_cli_streams(
            ["sweep", "--shard", "2/2", "--no-cache"])
        assert code == 2 and "shard" in text


class TestTraceCommand:
    def test_events_to_stdout(self):
        import json as json_module

        code, out_text, err_text = run_cli_streams(
            ["trace", "astar", "--ops", "3000"])
        assert code == 0
        lines = [l for l in out_text.splitlines() if l]
        assert lines
        first = json_module.loads(lines[0])
        assert set(first) == {"kind", "ts", "dur", "data"}
        assert "events" in err_text

    def test_events_to_file_and_perfetto(self, tmp_path):
        import json as json_module

        events = tmp_path / "out.jsonl"
        perfetto = tmp_path / "out.json"
        code, out_text, err_text = run_cli_streams(
            ["trace", "astar", "--ops", "3000", "--events", str(events),
             "--perfetto", str(perfetto)])
        assert code == 0
        assert out_text == ""  # everything went to files / stderr
        assert events.stat().st_size > 0
        with open(perfetto, encoding="utf-8") as handle:
            trace = json_module.load(handle)
        assert trace["traceEvents"]
        assert "wrote" in err_text

    def test_trace_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            run_cli_streams(["trace", "doom"])


class TestProfileCommand:
    def test_flamegraph_on_stdout(self):
        code, out_text, _err = run_cli_streams(
            ["profile", "astar", "--ops", "3000", "--mode", "shadow"])
        assert code == 0
        assert "cycle attribution" in out_text
        assert "page_walk" in out_text
        assert "vmm" in out_text

    def test_perfetto_export(self, tmp_path):
        import json as json_module

        target = tmp_path / "prof.json"
        code, _out, err_text = run_cli_streams(
            ["profile", "astar", "--ops", "3000", "--perfetto", str(target)])
        assert code == 0
        assert "wrote" in err_text
        with open(target, encoding="utf-8") as handle:
            trace = json_module.load(handle)
        assert {"traceEvents", "displayTimeUnit", "otherData"} <= set(trace)
