"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mode", "paravirt"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "mcf"
        assert args.mode == "agile"
        assert args.page_size == "4K"


class TestCommands:
    def test_list(self):
        code, text = run_cli(["list"])
        assert code == 0
        assert "memcached" in text
        assert "shsp" in text

    def test_run(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000"])
        assert code == 0
        assert "astar" in text
        assert "agile" in text

    def test_run_verbose_shows_mix(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000",
                              "--verbose"])
        assert code == 0
        assert "miss mix" in text

    def test_run_2m(self):
        code, text = run_cli(["run", "--workload", "astar", "--ops", "4000",
                              "--page-size", "2M", "--mode", "nested"])
        assert code == 0
        assert "2M" in text

    def test_run_no_pwc_raises_refs(self):
        _code, with_pwc = run_cli(["run", "--workload", "astar",
                                   "--ops", "4000", "--mode", "shadow"])
        _code, without = run_cli(["run", "--workload", "astar",
                                  "--ops", "4000", "--mode", "shadow",
                                  "--no-pwc"])

        def refs(text):
            line = [l for l in text.splitlines() if l.startswith("astar")][0]
            return float(line.split()[5])

        assert refs(without) > refs(with_pwc)

    def test_compare(self):
        code, text = run_cli(["compare", "--workload", "astar",
                              "--ops", "4000", "--modes", "native,agile"])
        assert code == 0
        assert "native" in text
        assert "agile" in text

    def test_figure5_subset(self):
        code, text = run_cli(["figure5", "--ops", "6000",
                              "--workloads", "astar"])
        assert code == 0
        assert "4K:A" in text
        assert "geomean" in text

    def test_table6_subset(self):
        code, text = run_cli(["table6", "--ops", "6000",
                              "--workloads", "astar"])
        assert code == 0
        assert "Table VI" in text

    def test_tables(self):
        code, text = run_cli(["tables"])
        assert code == 0
        assert "Table I" in text
        assert "Table II" in text
        assert "Table III" in text

    def test_policy_sweep(self):
        code, text = run_cli(["policy-sweep", "--workload", "astar",
                              "--ops", "4000",
                              "--param", "write_threshold", "--values", "1,8"])
        assert code == 0
        assert "write_threshold=1" in text
        assert "write_threshold=8" in text


class TestSweepCommand:
    def run_sweep(self, tmp_path, *extra):
        return run_cli(["sweep", "--workloads", "astar", "--modes", "shadow",
                        "--ops", "2000", "--cache-dir",
                        str(tmp_path / "cache"), *extra])

    def test_grid_runs_and_reports(self, tmp_path):
        code, text = self.run_sweep(tmp_path)
        assert code == 0
        assert "Sweep results" in text
        assert "astar" in text
        assert "1 simulated, 0 cached" in text

    def test_warm_cache_rerun_loads_not_simulates(self, tmp_path):
        self.run_sweep(tmp_path)
        code, text = self.run_sweep(tmp_path)
        assert code == 0
        assert "0 simulated, 1 cached" in text

    def test_no_cache_flag(self, tmp_path):
        self.run_sweep(tmp_path)
        code, text = self.run_sweep(tmp_path, "--no-cache")
        assert code == 0
        assert "1 simulated, 0 cached" in text

    def test_json_summary_inline(self, tmp_path):
        import json as json_module

        code, text = self.run_sweep(tmp_path, "--quiet", "--json", "-")
        assert code == 0
        payload = json_module.loads(text[text.index("{"):])
        assert payload["cells"] == 1
        assert payload["results"][0]["status"] in ("ok", "cached")

    def test_json_summary_file(self, tmp_path):
        import json as json_module

        target = tmp_path / "summary.json"
        code, _text = self.run_sweep(tmp_path, "--json", str(target))
        assert code == 0
        with open(target, encoding="utf-8") as handle:
            assert json_module.load(handle)["cells"] == 1

    def test_progress_lines(self, tmp_path):
        code, text = self.run_sweep(tmp_path)
        assert code == 0
        assert "[1/1] astar/shadow/4K" in text

    def test_rejects_unknown_names(self, tmp_path):
        code, text = run_cli(["sweep", "--workloads", "doom", "--no-cache"])
        assert code == 2 and "unknown workload" in text
        code, text = run_cli(["sweep", "--modes", "paravirt", "--no-cache"])
        assert code == 2 and "unknown mode" in text
        code, text = run_cli(["sweep", "--page-sizes", "8K", "--no-cache"])
        assert code == 2 and "unknown page size" in text
        code, text = run_cli(["sweep", "--shard", "2/2", "--no-cache"])
        assert code == 2 and "shard" in text
