"""Tests for the reproducer corpus: save, load, replay."""

import json
import os

import pytest

from repro.fuzz.corpus import (
    case_name,
    iter_cases,
    load_case,
    make_case,
    replay_case,
    save_case,
)
from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.scenario import ScenarioGenerator

REGRESSION_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "corpus", "regression")


def _tiny_case(note=None):
    scenario = ScenarioGenerator("default").generate(seed=5, ops=25)
    oracle = DifferentialOracle(modes=("native", "shadow"))
    return make_case(scenario, oracle, note=note)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        case = _tiny_case(note="roundtrip")
        path = save_case(str(tmp_path), case)
        assert os.path.exists(path)
        assert load_case(path) == case

    def test_case_name_deterministic(self):
        assert case_name(_tiny_case()) == case_name(_tiny_case())
        assert case_name(_tiny_case()).startswith("s5-default-25ops-")

    def test_iter_cases_sorted(self, tmp_path):
        for name in ("bbb", "aaa", "ccc"):
            save_case(str(tmp_path), _tiny_case(), name=name)
        names = [os.path.basename(p) for p, _ in iter_cases(str(tmp_path))]
        assert names == ["aaa.json", "bbb.json", "ccc.json"]

    def test_rejects_unknown_schema(self, tmp_path):
        case = _tiny_case()
        case["schema"] = 99
        with pytest.raises(ValueError):
            save_case(str(tmp_path), case)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(case))
        with pytest.raises(ValueError):
            load_case(str(path))

    def test_files_are_reviewable_json(self, tmp_path):
        path = save_case(str(tmp_path), _tiny_case())
        text = open(path).read()
        assert text.endswith("\n")
        assert "\n  " in text  # indented, diff-friendly


class TestReplay:
    def test_replay_runs_oracle(self):
        verdict = replay_case(_tiny_case())
        assert verdict.ok, verdict

    def test_replay_is_deterministic(self):
        case = _tiny_case()
        first = replay_case(case)
        second = replay_case(case)
        assert first.to_dict() == second.to_dict()


class TestCommittedRegressionCorpus:
    """Every committed regression case must replay clean: these encode
    bugs that are already fixed, and CI replays them on every run."""

    def _cases(self):
        assert os.path.isdir(REGRESSION_DIR), REGRESSION_DIR
        found = list(iter_cases(REGRESSION_DIR))
        assert found, "committed regression corpus is empty"
        return found

    def test_corpus_replays_clean(self):
        for path, case in self._cases():
            verdict = replay_case(case)
            assert verdict.ok, "%s: %r" % (path, verdict)

    def test_corpus_cases_have_notes(self):
        for path, case in self._cases():
            assert case.get("note"), "%s lacks a note" % path

    def test_rng_contract_case_regenerates(self):
        """The PR 2 rng-contract case is a *generated* scenario committed
        verbatim: regenerating from its (seed, profile, ops) must
        reproduce the committed op list bit-for-bit."""
        path = os.path.join(REGRESSION_DIR, "rng-contract-determinism.json")
        committed = load_case(path)["scenario"]
        regenerated = ScenarioGenerator(committed["profile"]).generate(
            seed=committed["seed"], ops=len(committed["ops"]))
        assert regenerated.to_dict() == committed
