"""The cross-VM isolation oracle: solo ≡ consolidated, bit for bit.

The generic corpus tests already replay the committed
``cross-vm-isolation-virtual-clock`` case; these tests exercise the
oracle directly — it must pass on fresh scenarios in every virtualized
mode, serialize faithfully for corpus files, and actually *fail* when
the per-VM virtual clocks are knocked out (the bug class it exists to
catch).
"""

import pytest

import repro.host.host as host_module
from repro.fuzz.isolation import IsolationOracle
from repro.fuzz.scenario import ScenarioGenerator

VM_FRAMES = 4096


def make_scenario(profile="ctx", seed=5, ops=60):
    return ScenarioGenerator(profile=profile).generate(seed, ops)


class TestIsolationOracle:
    @pytest.mark.parametrize("mode", ["nested", "shadow", "agile", "shsp"])
    def test_consolidated_guests_match_solo(self, mode):
        oracle = IsolationOracle(mode=mode, vms=2, vm_frames=VM_FRAMES)
        verdict = oracle.run(make_scenario())
        assert verdict.ok, verdict

    def test_holds_across_profiles_with_three_vms(self):
        oracle = IsolationOracle(mode="agile", vms=3, vm_frames=VM_FRAMES)
        for profile in ("default", "churn", "fork_cow"):
            verdict = oracle.run(make_scenario(profile, seed=9, ops=48))
            assert verdict.ok, (profile, verdict)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="at least one VM"):
            IsolationOracle(vms=0)
        with pytest.raises(ValueError, match="unknown mode"):
            IsolationOracle(mode="hypervisor").run(make_scenario())

    def test_options_roundtrip(self):
        oracle = IsolationOracle(mode="shadow", vms=4, step_ops=8,
                                 vm_frames=VM_FRAMES, vpid=True,
                                 hw_cr3_cache=False)
        options = oracle.options()
        assert options["kind"] == "isolation"
        assert options["hw_cr3_cache"] is False
        clone = IsolationOracle.from_options(options)
        assert clone.options() == options

    def test_detects_shared_clock_regression(self, monkeypatch):
        """Re-create the pre-VirtualClock bug: every VM reading host
        wall time directly. A neighbor's quanta then age this VM's
        clock-windowed agile policy, its switching decisions shift, and
        the composed gVA→hPA map diverges from solo — the oracle must
        say so."""
        monkeypatch.setattr(host_module, "VirtualClock",
                            lambda host: host)
        oracle = IsolationOracle(mode="agile", vms=2, vm_frames=VM_FRAMES)
        verdict = oracle.run(make_scenario())
        assert not verdict.ok
        assert verdict.check.startswith("isolation-")
