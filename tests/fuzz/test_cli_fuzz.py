"""CLI tests for ``repro fuzz``: exit codes and stream discipline.

The contract (matching ``sweep``): human tables on stdout, progress and
diagnostics on stderr, pure JSON on stdout under ``--json -``, exit 0
clean / 1 on oracle mismatch (with the reproducer path on stderr) / 2 on
bad arguments.
"""

import json

import pytest

from repro.fuzz.corpus import make_case, save_case
from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.scenario import ScenarioGenerator
from repro.hw.walker import PageWalker
from tests.test_cli import run_cli_streams

CLEAN = ["fuzz", "--seeds", "2", "--ops", "40", "--quiet"]


def _corpus_with_passing_case(tmp_path):
    scenario = ScenarioGenerator("default").generate(seed=5, ops=25)
    oracle = DifferentialOracle(modes=("native", "shadow"))
    case = make_case(scenario, oracle, note="cli test case")
    return save_case(str(tmp_path), case)


def _break_walker(monkeypatch):
    original = PageWalker.shadow_walk
    monkeypatch.setattr(
        PageWalker, "shadow_walk",
        lambda self, va, ctx, is_write=False: original(self, va, ctx,
                                                       is_write=False))


class TestArgumentValidation:
    def test_unknown_mode_exits_2(self):
        code, _out, err = run_cli_streams(["fuzz", "--modes", "native,warp"])
        assert code == 2
        assert "unknown mode" in err

    def test_unknown_page_size_exits_2(self):
        code, _out, err = run_cli_streams(["fuzz", "--page-sizes", "5G"])
        assert code == 2
        assert "unknown page size" in err

    def test_bad_shard_exits_2(self):
        code, _out, err = run_cli_streams(CLEAN + ["--shard", "9/3"])
        assert code == 2
        assert err.strip()

    def test_unreadable_case_exits_2(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        code, _out, err = run_cli_streams(["fuzz", "--replay", missing])
        assert code == 2
        assert "cannot load case" in err


class TestCleanCampaign:
    def test_exit_zero_and_summary_on_stdout(self, tmp_path):
        code, out, _err = run_cli_streams(
            CLEAN + ["--corpus-out", str(tmp_path / "corpus")])
        assert code == 0
        assert "2 case(s), 2 clean, 0 failed" in out

    def test_json_dash_keeps_stdout_pure(self, tmp_path):
        code, out, err = run_cli_streams(
            CLEAN + ["--corpus-out", str(tmp_path / "corpus"),
                     "--json", "-"])
        assert code == 0
        summary = json.loads(out)  # stdout must be valid JSON, only
        assert summary["clean"] == 2
        assert "case(s)" in err  # the human table moved to stderr

    def test_json_file(self, tmp_path):
        target = tmp_path / "report.json"
        code, _out, err = run_cli_streams(CLEAN + ["--json", str(target)])
        assert code == 0
        assert json.loads(target.read_text())["failed"] == 0
        assert str(target) in err


class TestMismatchCampaign:
    def test_exit_one_with_reproducer_on_stderr(self, tmp_path, monkeypatch):
        _break_walker(monkeypatch)
        corpus = tmp_path / "corpus"
        code, out, err = run_cli_streams(
            ["fuzz", "--seeds", "4", "--ops", "80", "--quiet",
             "--modes", "native,shadow", "--workers", "1",
             "--shrink-budget", "120",
             "--corpus-out", str(corpus)])
        assert code == 1
        assert "failed" in out
        assert "MISMATCH" in err
        assert "reproducer" in err
        assert str(corpus) in err
        assert list(corpus.glob("*.json")), "no reproducer written"

    def test_failure_trace_artifact_written(self, tmp_path, monkeypatch):
        _break_walker(monkeypatch)
        corpus = tmp_path / "corpus"
        code, _out, err = run_cli_streams(
            ["fuzz", "--seeds", "4", "--ops", "80", "--quiet",
             "--modes", "native,shadow", "--workers", "1",
             "--shrink-budget", "120",
             "--corpus-out", str(corpus)])
        assert code == 1
        assert "obs trace" in err
        traces = list(corpus.glob("*.trace.json"))
        assert traces
        payload = json.loads(traces[0].read_text())
        assert "events" in payload


class TestReplay:
    def test_replay_clean_case_exits_zero(self, tmp_path):
        path = _corpus_with_passing_case(tmp_path)
        code, out, err = run_cli_streams(["fuzz", "--replay", path])
        assert code == 0
        assert "1 case(s) replayed, 0 failed" in out
        assert "[replay] ok" in err

    def test_replay_directory(self, tmp_path):
        _corpus_with_passing_case(tmp_path)
        code, out, _err = run_cli_streams(["fuzz", "--corpus",
                                           str(tmp_path)])
        assert code == 0
        assert "1 case(s) replayed, 0 failed" in out

    def test_replay_failure_exits_one(self, tmp_path, monkeypatch):
        path = _corpus_with_passing_case(tmp_path)
        _break_walker(monkeypatch)
        code, _out, err = run_cli_streams(["fuzz", "--replay", path])
        assert code == 1
        assert "REPLAY FAILED" in err

    def test_replay_json_dash_purity(self, tmp_path):
        path = _corpus_with_passing_case(tmp_path)
        code, out, _err = run_cli_streams(
            ["fuzz", "--replay", path, "--json", "-", "--quiet"])
        assert code == 0
        assert json.loads(out)["replayed"] == 1
