"""Fuzzed coverage for the Section IV hardware caches.

Uses ctx-switch-heavy scenarios to check the paper's promise directly:
the gCR3 cache turns context-switch VMtraps into hardware hits without
changing *any* guest-visible state, and the PTE cache accelerates walks
equally invisibly.
"""

import pytest

from repro.fuzz.oracle import ScenarioRunner, build_system
from repro.fuzz.scenario import ScenarioGenerator
from repro.vmm.traps import CONTEXT_SWITCH, CR3_CACHE_HIT

SEEDS = (1, 4, 9)


def _run(mode, seed, **overrides):
    scenario = ScenarioGenerator("ctx").generate(seed=seed, ops=150)
    runner = ScenarioRunner(build_system(mode, **overrides))
    runner.run(scenario)
    return runner


class TestCR3Cache:
    """hw/cr3cache.py under fuzzed context-switch churn."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_hits_eliminate_exactly_the_promised_traps(self, seed):
        """Section IV: every gCR3-cache hit is one context-switch VMtrap
        that pure (cache-less) agile would have taken — no more, no
        less. The books must balance exactly."""
        with_cache = _run("agile", seed, hw_cr3_cache=True)
        without = _run("agile", seed, hw_cr3_cache=False)
        hits = with_cache.trap_counts().get(CR3_CACHE_HIT, 0)
        ctx_with = with_cache.trap_counts().get(CONTEXT_SWITCH, 0)
        ctx_without = without.trap_counts().get(CONTEXT_SWITCH, 0)
        assert hits > 0, "ctx profile never hit the gCR3 cache"
        assert ctx_with + hits == ctx_without
        assert without.trap_counts().get(CR3_CACHE_HIT, 0) == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cache_is_guest_invisible(self, seed):
        """The cache may only change trap counts, never guest state.

        hw_ad_assist is disabled because the assist syncs guest dirty
        bits lazily on a clock-driven schedule, and the cache (by
        eliminating trap cycles) legitimately shifts that schedule;
        with the assist off, A/D updates are synchronous and the
        comparison is exact.
        """
        with_cache = _run("agile", seed, hw_cr3_cache=True,
                          hw_ad_assist=False)
        without = _run("agile", seed, hw_cr3_cache=False,
                       hw_ad_assist=False)
        assert with_cache.leaf_snapshot() == without.leaf_snapshot()
        assert with_cache.fault_counters() == without.fault_counters()

    def test_stats_agree_with_trap_counter(self):
        runner = _run("agile", 1, hw_cr3_cache=True)
        cache = runner.system.vmm.cr3cache
        assert cache is not None
        assert cache.stats.hits == runner.trap_counts().get(CR3_CACHE_HIT, 0)

    def test_shadow_mode_never_uses_the_cache(self):
        """The gCR3 cache is an agile-paging feature (Section IV)."""
        runner = _run("shadow", 1, hw_cr3_cache=True)
        assert runner.system.vmm.cr3cache is None
        assert runner.trap_counts().get(CR3_CACHE_HIT, 0) == 0


class TestPTECache:
    """hw/ptecache.py under the same fuzzed scenarios."""

    @pytest.mark.parametrize("mode", ["native", "shadow", "agile"])
    def test_cache_is_guest_invisible(self, mode):
        # hw_ad_assist off for the same reason as the gCR3-cache test:
        # the cache changes walk cycles, and the assist's lazy dirty
        # sync is clock-scheduled.
        cached = _run(mode, 2, pte_cache_lines=256, hw_ad_assist=False)
        plain = _run(mode, 2, pte_cache_lines=0, hw_ad_assist=False)
        assert cached.leaf_snapshot() == plain.leaf_snapshot()
        assert cached.fault_counters() == plain.fault_counters()

    def test_cache_sees_traffic(self):
        runner = _run("agile", 2, pte_cache_lines=256)
        cache = runner.system.mmu.walker.pte_cache
        assert cache is not None
        assert cache.stats.hits + cache.stats.misses > 0
        assert cache.stats.hits > 0

    def test_disabled_by_default(self):
        runner = _run("agile", 2)
        assert runner.system.mmu.walker.pte_cache is None
