"""Tests for the ddmin delta-debugger."""

from repro.fuzz.scenario import ScenarioGenerator
from repro.fuzz.shrink import ddmin, shrink


class TestDdmin:
    def test_finds_single_culprit(self):
        items = list(range(40))
        result = ddmin(items, lambda sub: 17 in sub)
        assert result == [17]

    def test_finds_interacting_pair(self):
        items = list(range(40))
        result = ddmin(items, lambda sub: 3 in sub and 31 in sub)
        assert result == [3, 31]

    def test_preserves_order(self):
        items = list(range(60))
        result = ddmin(items, lambda sub: {5, 20, 55} <= set(sub))
        assert result == [5, 20, 55]

    def test_one_minimal(self):
        """No single element of the result is removable."""
        items = list(range(30))

        def failing(sub):
            return sum(sub) >= 100

        result = ddmin(items, failing)
        for index in range(len(result)):
            candidate = result[:index] + result[index + 1:]
            assert not (candidate and failing(candidate))

    def test_budget_caps_evaluations(self):
        calls = [0]

        def failing(sub):
            calls[0] += 1
            return 7 in sub

        ddmin(list(range(200)), failing, budget=10)
        assert calls[0] <= 10

    def test_everything_essential(self):
        items = [1, 2, 3]
        result = ddmin(items, lambda sub: sub == [1, 2, 3])
        assert result == [1, 2, 3]


class TestShrinkScenario:
    def test_shrinks_to_culprit_op(self):
        scenario = ScenarioGenerator("default").generate(seed=6, ops=100)
        # Synthetic predicate: "fails" iff the op list still contains the
        # first mmap op of the original program.
        culprit = next(op for op in scenario.ops if op["op"] == "mmap")

        def predicate(candidate):
            return culprit in candidate.ops

        small, evaluations = shrink(scenario, predicate)
        assert small.ops == [culprit]
        assert evaluations > 0
        assert small.seed == scenario.seed
        assert small.profile == scenario.profile

    def test_budget_returns_best_effort(self):
        scenario = ScenarioGenerator("default").generate(seed=6, ops=100)
        target = scenario.ops[42]
        small, evaluations = shrink(
            scenario, lambda c: target in c.ops, budget=5)
        assert evaluations <= 5
        assert target in small.ops
