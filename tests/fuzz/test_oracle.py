"""Tests for the differential oracle: clean runs, verdicts, plumbing."""

import pytest

from repro.fuzz.oracle import (
    DEFAULT_MODES,
    DifferentialOracle,
    ScenarioRunner,
    Verdict,
    build_system,
)
from repro.fuzz.scenario import Scenario, ScenarioGenerator

ALL_MODES = ("native", "nested", "shadow", "agile", "shsp")


def _scenario(profile, seed=1, ops=80):
    return ScenarioGenerator(profile).generate(seed=seed, ops=ops)


class TestBuildSystem:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            build_system("paravirt")

    def test_rejects_unknown_page_size(self):
        with pytest.raises(ValueError):
            build_system("agile", page_size="1G-ish")

    def test_native_has_no_vmm(self):
        assert build_system("native").vmm is None

    def test_virtualized_has_vmm(self):
        assert build_system("agile").vmm is not None

    def test_paranoid_wires_invariants(self):
        system = build_system("agile", paranoid=True)
        assert system.vmm.invariants is not None


class TestCleanEquivalence:
    """The core acceptance property: all modes agree on guest state."""

    @pytest.mark.parametrize("profile", ["default", "churn", "bimodal",
                                         "fork_cow", "ctx", "reclaim"])
    def test_profiles_clean_4k(self, profile):
        verdict = DifferentialOracle(modes=ALL_MODES).run(_scenario(profile))
        assert verdict.ok, verdict

    @pytest.mark.parametrize("profile", ["default", "fork_cow", "reclaim"])
    def test_profiles_clean_2m(self, profile):
        verdict = DifferentialOracle(
            modes=ALL_MODES, page_size="2M").run(_scenario(profile))
        assert verdict.ok, verdict

    def test_ad_assist_clean(self):
        verdict = DifferentialOracle(hw_ad_assist=True).run(
            _scenario("bimodal", seed=2))
        assert verdict.ok, verdict

    def test_verdict_repr_mentions_ok(self):
        verdict = DifferentialOracle(modes=("native", "shadow")).run(
            _scenario("default", ops=30))
        assert verdict.ok
        assert "ok" in repr(verdict)


class TestScenarioRunner:
    def test_skipped_ops_counted_not_fatal(self):
        runner = ScenarioRunner(build_system("native"))
        # munmap with no regions and exit of the last proc must skip.
        scenario = Scenario(seed=0, profile="manual", ops=[
            {"op": "munmap", "region": 0},
            {"op": "exit", "proc": 0},
            {"op": "mmap", "proc": 0, "pages": 2, "writable": True,
             "populate": False},
        ])
        runner.run(scenario)
        counters = runner.fault_counters()
        assert counters["skipped_ops"] == 2

    def test_prot_violation_counted(self):
        runner = ScenarioRunner(build_system("native"))
        scenario = Scenario(seed=0, profile="manual", ops=[
            {"op": "mmap", "proc": 0, "pages": 2, "writable": False,
             "populate": False},
            {"op": "touch", "region": 0, "page": 0, "write": True},
        ])
        runner.run(scenario)
        assert runner.fault_counters()["prot_violations"] == 1

    def test_leaf_snapshot_per_proc(self):
        runner = ScenarioRunner(build_system("native"))
        scenario = Scenario(seed=0, profile="manual", ops=[
            {"op": "mmap", "proc": 0, "pages": 2, "writable": True,
             "populate": True},
        ])
        runner.run(scenario)
        snapshot = runner.leaf_snapshot()
        assert len(snapshot) == 1
        leaves = snapshot[0]
        # 2 data pages + the code pages from spawn.
        assert len(leaves) >= 2

    def test_native_trap_counts_empty(self):
        runner = ScenarioRunner(build_system("native"))
        assert runner.trap_counts() == {}


class TestVerdict:
    def test_roundtrip(self):
        verdict = Verdict.failed("leaf-state", "divergence", op_index=3,
                                 modes=("native", "agile"),
                                 context={"x": 1})
        again = Verdict.from_dict(verdict.to_dict())
        assert again.check == "leaf-state"
        assert again.op_index == 3
        assert tuple(again.modes) == ("native", "agile")
        assert not again

    def test_passed_is_truthy(self):
        assert Verdict.passed()
        assert Verdict.passed().ok


class TestOracleOptions:
    def test_options_roundtrip(self):
        oracle = DifferentialOracle(modes=("native", "shadow"),
                                    page_size="2M", compare_every=4,
                                    hw_ad_assist=True)
        again = DifferentialOracle.from_options(oracle.options())
        assert again.options() == oracle.options()

    def test_trap_relations_checked(self):
        """A scenario with context switches exercises the agile-vs-shadow
        ordering relations (they hold on a healthy tree)."""
        verdict = DifferentialOracle(
            modes=("native", "nested", "shadow", "agile")).run(
            _scenario("ctx", seed=3, ops=120))
        assert verdict.ok, verdict
