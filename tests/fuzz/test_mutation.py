"""Mutation test: the oracle must catch an injected walker bug.

This is the acceptance check for the whole subsystem: break the
hardware model on purpose, confirm the differential oracle flags the
divergence, and confirm the shrinker reduces the trigger to a
human-sized reproducer (the ISSUE bound: at most 12 ops).
"""

import pytest

from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.scenario import ScenarioGenerator
from repro.fuzz.shrink import shrink
from repro.hw.walker import PageWalker

MODES = ("native", "shadow")


def _inject_write_blind_walker(monkeypatch):
    """Break shadow_walk: every access walks as a read.

    Writes to read-only shadow leaves stop raising protection faults, so
    the dirty-bit protocol (Section III-B) never runs and guest dirty
    bits silently stay clear on shadow machines.
    """
    original = PageWalker.shadow_walk

    def write_blind(self, va, ctx, is_write=False):
        return original(self, va, ctx, is_write=False)

    monkeypatch.setattr(PageWalker, "shadow_walk", write_blind)


def _first_failure(oracle, seeds=range(1, 20), ops=120):
    for seed in seeds:
        scenario = ScenarioGenerator("default").generate(seed=seed, ops=ops)
        verdict = oracle.run(scenario)
        if not verdict.ok:
            return scenario, verdict
    pytest.fail("injected walker bug was never caught")


class TestMutationCaught:
    def test_oracle_catches_injected_bug(self, monkeypatch):
        _inject_write_blind_walker(monkeypatch)
        _scenario, verdict = _first_failure(DifferentialOracle(modes=MODES))
        assert not verdict.ok
        assert "shadow" in verdict.modes or verdict.check in (
            "invariant", "exception")

    def test_shrinks_to_small_reproducer(self, monkeypatch):
        _inject_write_blind_walker(monkeypatch)
        oracle = DifferentialOracle(modes=MODES)
        scenario, _verdict = _first_failure(oracle)
        small, _evaluations = shrink(
            scenario, lambda c: not oracle.run(c).ok, budget=300)
        assert len(small.ops) <= 12, small.ops
        # The minimized scenario still reproduces under the mutation...
        assert not oracle.run(small).ok

    def test_reproducer_passes_once_fixed(self, monkeypatch):
        _inject_write_blind_walker(monkeypatch)
        oracle = DifferentialOracle(modes=MODES)
        scenario, _verdict = _first_failure(oracle)
        small, _evaluations = shrink(
            scenario, lambda c: not oracle.run(c).ok, budget=300)
        # ...and passes again on the healthy walker ("the fix").
        monkeypatch.undo()
        assert oracle.run(small).ok
