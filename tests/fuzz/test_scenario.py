"""Tests for the seeded scenario generator."""

import pytest

from repro.fuzz.scenario import (
    MAX_PROCS,
    MAX_REGIONS,
    OP_KINDS,
    PROFILES,
    Scenario,
    ScenarioGenerator,
)


class TestDeterminism:
    def test_same_seed_same_ops(self):
        a = ScenarioGenerator("default").generate(seed=42, ops=200)
        b = ScenarioGenerator("default").generate(seed=42, ops=200)
        assert a.ops == b.ops

    def test_different_seeds_differ(self):
        a = ScenarioGenerator("default").generate(seed=1, ops=200)
        b = ScenarioGenerator("default").generate(seed=2, ops=200)
        assert a.ops != b.ops

    def test_profiles_differ(self):
        a = ScenarioGenerator("ctx").generate(seed=5, ops=200)
        b = ScenarioGenerator("reclaim").generate(seed=5, ops=200)
        assert a.ops != b.ops

    def test_requested_length(self):
        for profile in sorted(PROFILES):
            scenario = ScenarioGenerator(profile).generate(seed=3, ops=75)
            assert len(scenario.ops) == 75, profile

    def test_only_known_kinds(self):
        for profile in sorted(PROFILES):
            scenario = ScenarioGenerator(profile).generate(seed=9, ops=150)
            for op in scenario.ops:
                assert op["op"] in OP_KINDS


class TestSerialization:
    def test_json_roundtrip(self):
        scenario = ScenarioGenerator("churn").generate(seed=11, ops=60)
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario

    def test_dict_roundtrip(self):
        scenario = ScenarioGenerator("fork_cow").generate(seed=12, ops=60)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_rejects_unknown_schema(self):
        data = ScenarioGenerator("default").generate(seed=1, ops=5).to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError):
            Scenario.from_dict(data)

    def test_with_ops_keeps_identity(self):
        scenario = ScenarioGenerator("default").generate(seed=4, ops=30)
        sliced = scenario.with_ops(scenario.ops[:7])
        assert sliced.seed == scenario.seed
        assert sliced.profile == scenario.profile
        assert len(sliced.ops) == 7

    def test_name_is_stable(self):
        scenario = ScenarioGenerator("default").generate(seed=4, ops=30)
        assert scenario.name == "s4-default-30"


class TestGeneratorModel:
    def test_spawn_respects_proc_cap(self):
        profile = PROFILES["default"]
        scenario = ScenarioGenerator(profile).generate(seed=21, ops=400)
        live = 1
        for op in scenario.ops:
            if op["op"] == "spawn" or op["op"] == "fork":
                live += 1
                assert live <= MAX_PROCS
            elif op["op"] == "exit" and live > 1:
                live -= 1

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            ScenarioGenerator("no-such-profile")

    def test_region_caps(self):
        scenario = ScenarioGenerator("churn").generate(seed=8, ops=400)
        regions = 0
        for op in scenario.ops:
            if op["op"] == "mmap":
                regions = min(regions + 1, MAX_REGIONS)
                assert regions <= MAX_REGIONS
            elif op["op"] == "munmap" and regions:
                regions -= 1
