"""Mutation acceptance: REPRO406 (ledger authority) is live.

Same idiom as ``tests/fastpath/test_annotations_mutation.py``: copy the
installed package, plant one realistic commit-ledger violation, and
prove ``repro check`` (the deep rule set) catches it. The clean-tree
gate already proves the unmutated tree passes REPRO406 with zero
baseline entries; these tests prove that cleanliness is earned.
"""

import os
import shutil

import repro
from repro.lint import DEEP_RULES
from repro.lint.engine import LintEngine


def _package_dir():
    return os.path.dirname(os.path.abspath(repro.__file__))


def _mutate(tmp_path, relpath, needle, replacement):
    mutant = tmp_path / "repro"
    shutil.copytree(_package_dir(), mutant,
                    ignore=shutil.ignore_patterns("__pycache__"))
    target = mutant.joinpath(*relpath.split("/"))
    source = target.read_text()
    assert needle in source  # the code this mutation depends on
    target.write_text(source.replace(needle, replacement))
    findings, _checked = LintEngine(DEEP_RULES).run([str(mutant)])
    return [f for f in findings if f.rule_id == "REPRO406"]


def test_charging_the_ledger_from_guest_accounting_fails_check(tmp_path):
    """A guest-side cycle-accounting path that meters the host commit
    ledger directly (instead of allocating through its MeteredMemory)
    bypasses the pressure/balloon protocol — REPRO406 must fire."""
    findings = _mutate(
        tmp_path, "core/machine.py",
        "cycles = refs * self.cost.cycles_per_walk_ref",
        "cycles = refs * self.cost.cycles_per_walk_ref\n"
        "        self.host_ledger.charge(0, refs)")
    assert findings, "ledger charge from repro.core went undetected"
    assert any("charge" in f.message for f in findings), \
        "\n".join(f.format() for f in findings)


def test_ledger_mutator_declared_outside_host_fails_check(tmp_path):
    """Declaring a ``@mutates("host_ledger")`` function outside
    ``repro.host`` moves commit authority out of the subsystem that owns
    the pressure protocol — REPRO406 must flag the definition itself."""
    findings = _mutate(
        tmp_path, "vmm/vmm.py",
        "from repro.common.effects import policy_decision, trap_handler",
        "from repro.common.effects import (mutates, policy_decision,\n"
        "                                  trap_handler)\n\n\n"
        "@mutates(\"host_ledger\")\n"
        "def rogue_commit(ledger, frames):\n"
        "    ledger.committed[0] = ledger.committed.get(0, 0) + frames\n")
    assert findings, "out-of-host ledger mutator went undetected"
    assert any("rogue_commit" in f.message for f in findings), \
        "\n".join(f.format() for f in findings)
