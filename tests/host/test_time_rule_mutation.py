"""Mutation acceptance: the REPRO70x time-domain rules are live.

Same idiom as ``tests/host/test_ledger_rule_mutation.py``: copy the
installed package, re-introduce a realistic clock-accounting bug, and
prove ``repro check`` (the deep rule set) catches it. The first
mutation is the literal PR 9 consolidation bug — a clock-windowed
policy fed host wall time instead of guest virtual time — which broke
bit-identical solo≡consolidated replay and could previously only be
caught by the dynamic isolation oracle. The clean-tree gate already
proves the unmutated tree passes REPRO701–704 with zero baseline
entries; these tests prove that cleanliness is earned.
"""

import os
import shutil

import repro
from repro.lint import DEEP_RULES
from repro.lint.engine import LintEngine


def _package_dir():
    return os.path.dirname(os.path.abspath(repro.__file__))


def _mutate(tmp_path, relpath, needle, replacement, rule_id):
    mutant = tmp_path / "repro"
    shutil.copytree(_package_dir(), mutant,
                    ignore=shutil.ignore_patterns("__pycache__"))
    target = mutant.joinpath(*relpath.split("/"))
    source = target.read_text()
    assert needle in source  # the code this mutation depends on
    target.write_text(source.replace(needle, replacement))
    findings, _checked = LintEngine(DEEP_RULES).run([str(mutant)])
    return [f for f in findings if f.rule_id == rule_id]


def test_policy_fed_host_wall_time_fails_check(tmp_path):
    """The PR 9 bug: the write-trigger policy's windowing `now` read
    from the *host* clock through the VirtualClock pass-through. Under
    consolidation that timestamp includes every other tenant's cycles,
    so window expiry — and with it the whole switching schedule —
    depends on co-tenants. REPRO701 must flag the call site: the
    policy declares ``now`` as guest_sim, the argument is host_wall."""
    findings = _mutate(
        tmp_path, "vmm/vmm.py",
        "state.manager, node.frame, self.clock.now)",
        "state.manager, node.frame, self.clock.host.now)",
        "REPRO701")
    assert findings, "host-wall `now` into a guest-windowed policy " \
        "went undetected"
    assert any("note_write" in f.message and "host_wall" in f.message
               for f in findings), \
        "\n".join(f.format() for f in findings)


def test_unattributed_balloon_advance_fails_check(tmp_path):
    """A reclaim path that bills cycles straight onto its clock with no
    ``@charges`` declaration drops them from every reported counter —
    total_cycles would no longer decompose into its parts. REPRO703
    must flag the advance site."""
    findings = _mutate(
        tmp_path, "host/balloon.py",
        "            freed_total += freed",
        "            if self.clock is not None:\n"
        "                self.clock.advance(freed)\n"
        "            freed_total += freed",
        "REPRO703")
    assert findings, "unattributed balloon-driver advance went undetected"
    assert any("reclaim" in f.message for f in findings), \
        "\n".join(f.format() for f in findings)


def test_unauthorized_balloon_advance_also_fails_authority(tmp_path):
    """The same balloon mutation is a REPRO702 finding too: the driver
    is host-side but not a host-clock authority (only VCpuScheduler
    and Host are)."""
    findings = _mutate(
        tmp_path, "host/balloon.py",
        "            freed_total += freed",
        "            if self.clock is not None:\n"
        "                self.clock.advance(freed)\n"
        "            freed_total += freed",
        "REPRO702")
    assert findings, "unauthorized host-clock advance went undetected"
    assert any("authority" in f.message or "VCpuScheduler" in f.message
               for f in findings), \
        "\n".join(f.format() for f in findings)
