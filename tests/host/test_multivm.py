"""The consolidation subsystem: ledger, scheduler, ballooning.

The cross-VM isolation *oracle* (``repro.fuzz.isolation``) proves the
headline invariant statistically over fuzzed scenarios; these tests pin
the mechanisms it rests on, one at a time: config validation, commit
ledger accounting (including double-free protection on revoked frames),
weighted-quantum scheduling with deterministic preemption, and balloon
reclaim under genuine overcommit.
"""

import pytest

from repro.common.config import HostConfig, sandy_bridge_config
from repro.common.errors import SimulationError
from repro.core.hostsys import HostSystem, run_consolidated
from repro.core.simulator import run_workload
from repro.host.host import Host
from repro.host.memory import HostMemoryManager, HostPressureError
from repro.workloads.consolidation import (
    ContextSwitchStorm,
    PackedHog,
    ReclaimThrasher,
)

VM_FRAMES = 4096


def agile_config(**overrides):
    overrides.setdefault("host_mem_frames", VM_FRAMES)
    return sandy_bridge_config(mode="agile", **overrides)


class TestHostConfig:
    def test_rejects_zero_vms(self):
        with pytest.raises(ValueError, match="at least one VM"):
            HostConfig(vms=0)

    def test_rejects_bad_frame_counts(self):
        with pytest.raises(ValueError, match="vm_frames"):
            HostConfig(vm_frames=0)
        with pytest.raises(ValueError, match="host_frames"):
            HostConfig(host_frames=-1)

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError, match="quantum_cycles"):
            HostConfig(quantum_cycles=0)

    def test_weights_must_name_every_vm_and_be_positive(self):
        with pytest.raises(ValueError, match="weights"):
            HostConfig(vms=3, weights=(1.0, 2.0))
        with pytest.raises(ValueError, match="positive"):
            HostConfig(vms=2, weights=(1.0, 0.0))
        config = HostConfig(vms=2, weights=(1.0, 2.5))
        assert config.weight_of(0) == 1.0
        assert config.weight_of(1) == 2.5
        assert HostConfig(vms=2).weight_of(1) == 1.0

    def test_commit_limit_and_overcommit_ratio(self):
        flat = HostConfig(vms=4, vm_frames=1000)
        assert flat.commit_limit_frames == 4000
        assert flat.overcommit_ratio == 1.0
        packed = HostConfig(vms=4, vm_frames=1000, host_frames=2000)
        assert packed.commit_limit_frames == 2000
        assert packed.overcommit_ratio == 2.0


class TestHostMemoryManager:
    def test_charge_credit_roundtrip(self):
        ledger = HostMemoryManager(100)
        ledger.attach_vm(0, 60)
        ledger.attach_vm(1, 60)
        ledger.charge(0, 30)
        ledger.charge(1, 50)
        assert ledger.total_committed == 80
        assert ledger.available == 20
        assert ledger.overcommitted
        ledger.credit(1, 10)
        assert ledger.committed == {0: 30, 1: 40}

    def test_credit_of_never_charged_frames_raises(self):
        ledger = HostMemoryManager(100)
        ledger.attach_vm(0, 50)
        ledger.charge(0, 5)
        with pytest.raises(SimulationError, match="never charged"):
            ledger.credit(0, 6)

    def test_exhaustion_without_pressure_handler(self):
        ledger = HostMemoryManager(10)
        ledger.attach_vm(0, 20)
        with pytest.raises(HostPressureError, match="reclaim freed nothing"):
            ledger.charge(0, 11)

    def test_pressure_handler_runs_until_charge_fits(self):
        ledger = HostMemoryManager(10)
        ledger.attach_vm(0, 8)
        ledger.attach_vm(1, 8)
        ledger.charge(0, 8)
        calls = []

        def reclaim(requester, need):
            calls.append((requester, need))
            ledger.credit(0, need)  # evict the hog on vm 0's behalf
            return need

        ledger.pressure_handler = reclaim
        ledger.charge(1, 6)
        assert calls == [(1, 4)]
        assert ledger.total_committed == 10
        assert ledger.reclaim_episodes == 1
        assert ledger.frames_reclaimed == 4

    def test_attach_vm_twice_raises(self):
        ledger = HostMemoryManager(100)
        ledger.attach_vm(0, 50)
        with pytest.raises(SimulationError, match="already attached"):
            ledger.attach_vm(0, 50)


class TestMeteredMemory:
    def test_vm_local_frames_match_solo_geometry(self):
        ledger = HostMemoryManager(128)
        mem0 = ledger.attach_vm(0, 64)
        mem1 = ledger.attach_vm(1, 64)
        f0, f1 = mem0.alloc_frame(), mem1.alloc_frame()
        # Both VMs hand out the same *local* frame number; the global
        # partition origin keeps them physically disjoint.
        assert f0 == f1
        assert mem0.global_frame(f0) != mem1.global_frame(f1)
        assert ledger.committed == {0: 1, 1: 1}

    def test_double_free_of_revoked_frame_is_refused(self):
        ledger = HostMemoryManager(128)
        mem = ledger.attach_vm(0, 64)
        frame = mem.alloc_frame()
        assert mem.live_frames == 1
        mem.free_frame(frame)
        assert mem.live_frames == 0
        with pytest.raises(SimulationError, match="double free"):
            mem.free_frame(frame)
        # The refused free must not have corrupted the ledger.
        assert ledger.committed[0] == 0


def ticker(system, cycles):
    """An endless program that burns ``cycles`` of vCPU time per step."""
    def factory(_api):
        def run():
            while True:
                system.clock.advance(cycles)
                yield
        return run()
    return factory


class TestScheduler:
    def test_weighted_quanta_bound_cpu_time(self):
        quantum, step, rounds = 10_000, 500, 32
        host = Host(HostConfig(vms=2, weights=(1.0, 3.0),
                               quantum_cycles=quantum,
                               vm_frames=VM_FRAMES),
                    machine_config=agile_config())
        host.load([ticker(vm.system, step) for vm in host.vms])
        for _ in range(rounds):
            for vm in host.vms:
                host.scheduler.run_quantum(vm)
        light, heavy = host.vms
        # Per quantum a VM gets quantum*weight cycles, overshooting by
        # at most one step (preemption only lands on yield points).
        assert quantum * rounds <= light.cpu_cycles \
            <= (quantum + step) * rounds
        assert 3 * quantum * rounds <= heavy.cpu_cycles \
            <= (3 * quantum + step) * rounds
        ratio = heavy.cpu_cycles / light.cpu_cycles
        assert 2.8 <= ratio <= 3.2
        # World switches were charged to the host clock, not to vCPUs.
        assert host.scheduler.world_switches == 2 * rounds - 1
        assert host.clock.now == (light.cpu_cycles + heavy.cpu_cycles
                                  + host.scheduler.world_switch_cycles)

    def test_consolidated_run_is_deterministic(self):
        def once():
            per_vm, report = run_consolidated(
                [ContextSwitchStorm(ops=1_000, seed=7 + i)
                 for i in range(2)],
                HostConfig(vms=2, vm_frames=VM_FRAMES),
                agile_config())
            return [m.to_dict() for m in per_vm], report

        assert once() == once()

    def test_preemption_is_invisible_to_the_guest(self):
        """serial == resumed-from-preemption: a guest sliced into many
        quanta reports bit-identical metrics to one that ran its whole
        program inside a single quantum."""
        def run_with_quantum(quantum_cycles):
            per_vm, _report = run_consolidated(
                [ContextSwitchStorm(ops=1_200, seed=11)],
                HostConfig(vms=1, vm_frames=VM_FRAMES,
                           quantum_cycles=quantum_cycles),
                agile_config())
            return per_vm[0].to_dict()

        sliced = run_with_quantum(2_000)       # hundreds of preemptions
        serial = run_with_quantum(1 << 40)     # one uninterrupted slice
        assert sliced == serial

    def test_consolidated_guest_metrics_match_solo(self):
        """With VPID and no overcommit, every consolidated VM's metrics
        (cycles included — each VM runs on its own virtual clock) equal
        a solo run of the same workload on a reservation-sized machine."""
        config = agile_config()
        solo = run_workload(ContextSwitchStorm(ops=1_000, seed=7),
                            config).to_dict()
        per_vm, _report = run_consolidated(
            [ContextSwitchStorm(ops=1_000, seed=7) for _ in range(2)],
            HostConfig(vms=2, vm_frames=VM_FRAMES, vpid=True),
            config)
        for metrics in per_vm:
            got = metrics.to_dict()
            got["label"] = solo["label"]
            assert got == solo


class TestBallooning:
    def test_no_overcommit_never_balloons(self):
        system = HostSystem(HostConfig(vms=2, vm_frames=VM_FRAMES),
                            machine_config=agile_config())
        system.run([PackedHog(ops=800, seed=s, npages=256)
                    for s in (1, 2)])
        report = system.host_report()
        assert report["balloon_episodes"] == 0
        assert report["balloon_frames"] == 0

    def test_overcommit_reclaims_and_run_completes(self):
        # Two thrashers whose footprints sum past physical RAM (each
        # commits ~570 host frames at this op budget): the ledger must
        # stay at or under the commit limit throughout, and ballooning
        # must actually have fired.
        host_frames = 1000
        system = HostSystem(
            HostConfig(vms=2, vm_frames=VM_FRAMES,
                       host_frames=host_frames),
            machine_config=agile_config())
        per_vm = system.run([ReclaimThrasher(ops=900, seed=s, npages=768)
                             for s in (3, 4)])
        report = system.host_report()
        assert report["overcommit_ratio"] > 1.0
        assert report["balloon_episodes"] > 0
        assert report["balloon_frames"] > 0
        ledger = report["ledger"]
        assert ledger["total_frames"] == host_frames
        assert sum(ledger["committed"].values()) <= host_frames
        # Both guests still finished their full op budget.
        assert all(m.ops == 900 for m in per_vm)
        # Victim-side accounting reached the per-VM counters.
        assert sum(v["balloon_frames"] for v in report["per_vm"]) \
            == report["balloon_frames"]
