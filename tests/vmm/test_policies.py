"""Unit tests for the Section III-C policies."""

import pytest

from repro.common.config import PolicyConfig
from repro.vmm.policies import (
    DirtyBitReversionPolicy,
    NoReversionPolicy,
    ProcessPolicy,
    ShortLivedPolicy,
    SimpleReversionPolicy,
    WriteTriggerPolicy,
    make_reversion_policy,
)


class FakeManager:
    """Just enough manager surface for policy unit tests."""

    def __init__(self, nodes=None):
        self.switched = []
        self.reverted = []
        self.fully_nested = False
        self.shadow_enabled = False
        self.root_gfn = 100
        self._nested = list(nodes or [])
        self.node_meta = {}

    def switch_to_nested(self, gfn):
        self.switched.append(gfn)
        return True

    def revert_to_shadow(self, gfn):
        self.reverted.append(gfn)
        meta = self.node_meta.get(gfn)
        if meta is not None:
            meta.mode = "shadow"
        return True

    def revert_all(self):
        self.reverted.extend(self._nested)
        count = len(self._nested)
        self._nested = []
        return count

    def nested_node_gfns(self):
        return list(self._nested)

    def enable_shadow_coverage(self):
        self.fully_nested = False
        self.shadow_enabled = True


class FakeHostPT:
    def __init__(self, dirty=()):
        self._dirty = set(dirty)

    def is_dirty(self, gfn):
        return gfn in self._dirty

    def clear_dirty(self, gfn):
        self._dirty.discard(gfn)


class TestWriteTrigger:
    def test_single_write_does_not_switch(self):
        policy = WriteTriggerPolicy(threshold=2, interval=100)
        manager = FakeManager()
        assert not policy.note_write(manager, 7, now=0)
        assert manager.switched == []

    def test_two_writes_in_window_switch(self):
        policy = WriteTriggerPolicy(threshold=2, interval=100)
        manager = FakeManager()
        policy.note_write(manager, 7, now=0)
        assert policy.note_write(manager, 7, now=50)
        assert manager.switched == [7]

    def test_writes_outside_window_reset(self):
        policy = WriteTriggerPolicy(threshold=2, interval=100)
        manager = FakeManager()
        policy.note_write(manager, 7, now=0)
        assert not policy.note_write(manager, 7, now=500)
        policy.note_write(manager, 7, now=501)
        assert manager.switched == [7]

    def test_nodes_tracked_independently(self):
        policy = WriteTriggerPolicy(threshold=2, interval=100)
        manager = FakeManager()
        policy.note_write(manager, 7, now=0)
        assert not policy.note_write(manager, 8, now=1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            WriteTriggerPolicy(threshold=0)


class TestSimpleReversion:
    def test_reverts_at_interval(self):
        policy = SimpleReversionPolicy(interval=1000)
        manager = FakeManager(nodes=[1, 2, 3])
        assert policy.tick(manager, FakeHostPT(), now=500) == 0
        assert policy.tick(manager, FakeHostPT(), now=1000) == 3

    def test_no_double_revert_within_interval(self):
        policy = SimpleReversionPolicy(interval=1000)
        manager = FakeManager(nodes=[1])
        policy.tick(manager, FakeHostPT(), now=1000)
        assert policy.tick(manager, FakeHostPT(), now=1500) == 0


class _Meta:
    def __init__(self, mode, parent_gfn=None):
        self.mode = mode
        self.parent_gfn = parent_gfn


class TestDirtyBitReversion:
    def test_clean_nodes_revert(self):
        policy = DirtyBitReversionPolicy(interval=1000)
        manager = FakeManager(nodes=[5])
        manager.node_meta = {5: _Meta("nested", parent_gfn=100),
                             100: _Meta("shadow")}
        assert policy.tick(manager, FakeHostPT(), now=1000) == 1
        assert manager.reverted == [5]

    def test_dirty_nodes_stay_and_get_cleared(self):
        policy = DirtyBitReversionPolicy(interval=1000)
        manager = FakeManager(nodes=[5])
        manager.node_meta = {5: _Meta("nested", parent_gfn=100),
                             100: _Meta("shadow")}
        hostpt = FakeHostPT(dirty=[5])
        assert policy.tick(manager, hostpt, now=1000) == 0
        assert not hostpt.is_dirty(5)  # cleared for the next interval
        # Next interval, still clean: now it reverts.
        assert policy.tick(manager, hostpt, now=2000) == 1

    def test_parent_before_child(self):
        policy = DirtyBitReversionPolicy(interval=1000)
        manager = FakeManager(nodes=[100, 5])  # root first (top-down)
        manager.node_meta = {
            100: _Meta("nested", parent_gfn=None),
            5: _Meta("nested", parent_gfn=100),
        }
        reverted = policy.tick(manager, FakeHostPT(), now=1000)
        # Parent reverts first, making the child eligible the same tick.
        assert reverted == 2
        assert manager.reverted == [100, 5]

    def test_child_under_nested_parent_waits(self):
        policy = DirtyBitReversionPolicy(interval=1000)
        manager = FakeManager(nodes=[5])
        manager.node_meta = {
            100: _Meta("nested", parent_gfn=None),
            5: _Meta("nested", parent_gfn=100),
        }
        assert policy.tick(manager, FakeHostPT(), now=1000) == 0


class TestShortLived:
    def test_enables_shadow_after_grace_with_pressure(self):
        policy = ShortLivedPolicy(grace_cycles=100, miss_rate_threshold=5.0)
        manager = FakeManager()
        manager.fully_nested = True
        policy.tick(manager, now=0, miss_rate_per_kop=50.0)
        assert not manager.shadow_enabled
        policy.tick(manager, now=200, miss_rate_per_kop=50.0)
        assert manager.shadow_enabled

    def test_low_pressure_stays_nested(self):
        policy = ShortLivedPolicy(grace_cycles=100, miss_rate_threshold=5.0)
        manager = FakeManager()
        manager.fully_nested = True
        policy.tick(manager, now=0, miss_rate_per_kop=0.1)
        policy.tick(manager, now=200, miss_rate_per_kop=0.1)
        assert not manager.shadow_enabled
        assert policy.decided

    def test_decides_only_once(self):
        policy = ShortLivedPolicy(grace_cycles=100, miss_rate_threshold=5.0)
        manager = FakeManager()
        manager.fully_nested = True
        policy.tick(manager, now=0, miss_rate_per_kop=0.0)
        policy.tick(manager, now=200, miss_rate_per_kop=0.0)
        manager.fully_nested = True
        assert not policy.tick(manager, now=400, miss_rate_per_kop=99.0)


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_reversion_policy("dirty", 10), DirtyBitReversionPolicy)
        assert isinstance(make_reversion_policy("simple", 10), SimpleReversionPolicy)
        assert isinstance(make_reversion_policy("none", 10), NoReversionPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_reversion_policy("bogus", 10)

    def test_process_policy_bundle(self):
        bundle = ProcessPolicy(PolicyConfig())
        manager = FakeManager()
        bundle.note_write(manager, 7, now=0)
        bundle.note_write(manager, 7, now=1)
        assert bundle.switches_to_nested == 1
