"""Unit tests for VMtrap accounting."""

from repro.vmm import traps as T
from repro.vmm.traps import TrapStats


class TestTrapStats:
    def test_record_counts_and_cycles(self):
        stats = TrapStats()
        stats.record(T.PT_WRITE, 2200)
        stats.record(T.PT_WRITE, 2200)
        stats.record(T.CONTEXT_SWITCH, 1800)
        assert stats.count(T.PT_WRITE) == 2
        assert stats.cycles[T.PT_WRITE] == 4400
        assert stats.total_traps == 3
        assert stats.total_cycles == 6200

    def test_hardware_events_not_counted_as_traps(self):
        stats = TrapStats()
        stats.record(T.AD_ASSIST, 960)
        stats.record(T.CR3_CACHE_HIT, 0)
        assert stats.total_traps == 0
        assert stats.total_cycles == 0
        assert stats.counts[T.AD_ASSIST] == 1

    def test_reset(self):
        stats = TrapStats()
        stats.record(T.HOST_FAULT, 3500)
        stats.reset()
        assert stats.total_traps == 0
        assert stats.snapshot() == {}

    def test_unknown_count_is_zero(self):
        assert TrapStats().count("nonexistent") == 0

    def test_snapshot_is_a_copy(self):
        stats = TrapStats()
        stats.record(T.INVLPG, 1200)
        snap = stats.snapshot()
        snap[T.INVLPG] = 999
        assert stats.count(T.INVLPG) == 1

    def test_all_trap_kinds_enumerated(self):
        assert set(T.ALL_TRAP_KINDS) == {
            "pt_write", "context_switch", "shadow_fill", "dirty_sync",
            "guest_fault_exit", "host_fault", "invlpg",
        }
