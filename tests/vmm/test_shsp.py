"""Tests for the SHSP baseline (Section VII-C / related work)."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI, run_workload
from repro.vmm import traps as T
from repro.vmm.shsp import (
    SHSPController,
    TECH_NESTED,
    TECH_SHADOW,
    rebuild_cost_cycles,
)
from repro.workloads.suite import CannealLike, DedupLike


class TestController:
    def test_starts_in_shadow(self):
        assert SHSPController().technique == TECH_SHADOW

    def test_update_storm_switches_to_nested(self):
        controller = SHSPController(interval=100)
        for _i in range(50):
            controller.note_pt_write()
        controller.note_miss()
        assert controller.decide(now=200, resident_pages=100) == TECH_NESTED
        assert controller.switches == 1

    def test_miss_storm_switches_back_after_two_quiet_windows(self):
        controller = SHSPController(interval=100)
        for _i in range(50):
            controller.note_pt_write()
        controller.decide(now=200, resident_pages=100)  # -> nested
        for _i in range(10_000):
            controller.note_miss()
        # First quiet window: hysteresis holds nested.
        assert controller.decide(now=400, resident_pages=100) == TECH_NESTED
        for _i in range(10_000):
            controller.note_miss()
        assert controller.decide(now=600, resident_pages=100) == TECH_SHADOW

    def test_noisy_windows_reset_hysteresis(self):
        controller = SHSPController(interval=100, quiet_threshold=2)
        for _i in range(50):
            controller.note_pt_write()
        controller.decide(now=200, resident_pages=100)  # -> nested
        for _i in range(10_000):
            controller.note_miss()
        controller.decide(now=400, resident_pages=100)  # quiet #1
        for _i in range(50):
            controller.note_pt_write()  # noise again
        controller.decide(now=600, resident_pages=100)
        for _i in range(10_000):
            controller.note_miss()
        # Quiet streak restarted: still nested after one quiet window.
        assert controller.decide(now=800, resident_pages=100) == TECH_NESTED

    def test_no_decision_within_interval(self):
        controller = SHSPController(interval=1000)
        for _i in range(100):
            controller.note_pt_write()
        assert controller.decide(now=500, resident_pages=1) == TECH_SHADOW

    def test_rebuild_cost_scales_with_footprint(self):
        assert rebuild_cost_cycles(1000) == 10 * rebuild_cost_cycles(100)


class TestSHSPMode:
    def test_runs_end_to_end(self):
        metrics = run_workload(DedupLike(ops=20_000),
                               sandy_bridge_config(mode="shsp"))
        assert metrics.ops >= 20_000
        assert metrics.mode == "shsp"

    def test_quiet_workload_stays_shadow(self):
        system = System(sandy_bridge_config(mode="shsp"))
        from repro.core.simulator import Simulator

        Simulator(system).run(CannealLike(ops=20_000))
        techniques = {s.shsp.technique for s in system.vmm.states.values()
                      if s.shsp is not None}
        assert TECH_SHADOW in techniques

    def test_update_heavy_workload_pays_rebuilds_or_traps(self):
        metrics = run_workload(DedupLike(ops=60_000),
                               sandy_bridge_config(mode="shsp"))
        paid = (metrics.trap_counts.get(T.SHSP_REBUILD, 0)
                + metrics.trap_counts.get(T.PT_WRITE, 0))
        assert paid > 0

    def test_context_switch_free_in_nested_phase(self):
        system = System(sandy_bridge_config(mode="shsp"))
        api = MachineAPI(system)
        first = api.spawn()
        second = api.spawn()
        state = system.vmm.states[first.pid]
        state.shsp.technique = TECH_NESTED
        state.manager.fully_nested = True
        before = system.vmm.traps.count(T.CONTEXT_SWITCH)
        api.switch_to(first)
        assert system.vmm.traps.count(T.CONTEXT_SWITCH) == before

    def test_agile_beats_shsp_on_mixed_workload(self):
        """Section VII-C: agile exceeds SHSP, which is limited by the
        full cost of whichever single technique it picks."""
        shsp = run_workload(DedupLike(ops=60_000),
                            sandy_bridge_config(mode="shsp"))
        agile = run_workload(DedupLike(ops=60_000),
                             sandy_bridge_config(mode="agile"))
        shsp_total = shsp.page_walk_overhead + shsp.vmm_overhead
        agile_total = agile.page_walk_overhead + agile.vmm_overhead
        assert agile_total <= shsp_total * 1.05
