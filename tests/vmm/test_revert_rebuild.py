"""Tests for eager shadow rebuild on nested=>shadow reversion."""

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.vmm import traps as T


def build_switched_system():
    system = System(sandy_bridge_config(mode="agile"))
    api = MachineAPI(system)
    proc = api.spawn()
    base = api.mmap(32 << 12)
    for i in range(32):
        api.write(base + i * 4096)  # burst: leaf node switches to nested
    manager = system.vmm.states[proc.pid].manager
    return system, api, proc, manager, base


class TestRevertRebuild:
    def test_revert_rebuilds_leaves(self):
        system, api, proc, manager, base = build_switched_system()
        nested = manager.nested_node_gfns()
        assert nested, "setup should have switched at least one node"
        for gfn in nested:
            meta = manager.node_meta[gfn]
            if gfn == manager.root_gfn or (
                manager.node_meta[meta.parent_gfn].mode == "shadow"
            ):
                manager.revert_to_shadow(gfn)
        # Every mapped page in the region translates via shadow without
        # any fill trap.
        system.vmm.traps.reset()
        system.mmu.flush_all()
        for i in range(32):
            api.read(base + i * 4096)
        assert system.vmm.traps.count(T.SHADOW_FILL) == 0

    def test_revert_installs_switch_for_nested_children(self):
        system, api, proc, manager, base = build_switched_system()
        # Force the whole table nested, then revert only the root: its
        # children stay nested and must get switching-bit entries.
        manager.switch_to_nested(manager.root_gfn)
        manager.revert_to_shadow(manager.root_gfn)
        system.vmm.traps.reset()
        system.mmu.flush_all()
        outcome = api.read(base)
        # The walk crossed into nested mode via an SB installed by the
        # rebuild, with no shadow-fill trap.
        assert system.vmm.traps.count(T.SHADOW_FILL) == 0
        assert outcome.walk is None or outcome.walk.nested_levels >= 1

    def test_policy_reversion_charges_background_work(self):
        system, api, proc, manager, base = build_switched_system()
        # Drive time past several reversion intervals with read-only
        # traffic; the dirty-bit policy reverts everything and the
        # background work must be accounted.
        deadline = system.clock.now + 3 * system.config.policy.revert_interval
        while system.clock.now < deadline:
            system.mmu.flush_all()  # keep walks (and time) flowing
            for i in range(32):
                api.read(base + i * 4096)
        assert not manager.nested_node_gfns()
        assert system.vmm.traps.counts.get(T.REVERT_REBUILD, 0) >= 1
        assert system.vmm.traps.cycles.get(T.REVERT_REBUILD, 0) > 0
        # Background work is attributed to the VMM but is not a VMexit.
        assert T.REVERT_REBUILD not in T.ALL_TRAP_KINDS
