"""Tests for VMM-initiated (host-level) content-based page sharing."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.vmm import traps as T


def build(mode):
    system = System(sandy_bridge_config(mode=mode))
    api = MachineAPI(system)
    api.spawn()
    base = api.mmap(8 << 12)
    for i in range(8):
        api.write(base + i * 4096)
    proc = system.kernel.current
    gfns = [proc.page_table.translate(base + i * 4096)[0] for i in range(8)]
    return system, api, base, gfns


class TestHostShareNested:
    def test_protects_and_counts(self):
        system, api, base, gfns = build("nested")
        protected = system.vmm.host_share_pages(gfns)
        assert protected == 8
        assert system.vmm.traps.counts[T.HOST_SHARE] == 1
        for gfn in gfns:
            assert not system.vmm.hostpt.leaf_for_gfn(gfn).writable

    def test_write_takes_host_cow_fault(self):
        system, api, base, gfns = build("nested")
        system.vmm.host_share_pages(gfns)
        before = system.vmm.traps.count(T.HOST_FAULT)
        api.write(base)
        assert system.vmm.traps.count(T.HOST_FAULT) == before + 1
        # Resolved: the frame is writable again and writes proceed.
        api.write(base)
        assert system.vmm.traps.count(T.HOST_FAULT) == before + 1

    def test_reads_unaffected(self):
        system, api, base, gfns = build("nested")
        system.vmm.host_share_pages(gfns)
        before = system.vmm.traps.count(T.HOST_FAULT)
        for i in range(8):
            api.read(base + i * 4096)
        assert system.vmm.traps.count(T.HOST_FAULT) == before

    def test_unbacked_gfns_skipped(self):
        system, api, base, gfns = build("nested")
        assert system.vmm.host_share_pages([10**6]) == 0


class TestHostShareShadow:
    @pytest.mark.parametrize("mode", ["shadow", "agile"])
    def test_shadow_entries_invalidated_and_cow_resolves(self, mode):
        system, api, base, gfns = build(mode)
        system.vmm.host_share_pages(gfns)
        # Writes must not sneak through stale writable shadow leaves.
        api.write(base)
        gfn = gfns[0]
        assert system.vmm.hostpt.leaf_for_gfn(gfn).writable  # COW resolved

    @pytest.mark.parametrize("mode", ["shadow", "agile"])
    def test_translation_still_correct(self, mode):
        system, api, base, gfns = build(mode)
        expected = [system.vmm.hostpt.translate(g) for g in gfns]
        system.vmm.host_share_pages(gfns)
        for i in range(8):
            outcome = api.read(base + i * 4096)
            assert outcome.frame == expected[i]
