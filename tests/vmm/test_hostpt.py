"""Unit tests for the host (nested) page table."""

import pytest

from repro.common.params import TWO_MB
from repro.mem.physmem import PhysicalMemory
from repro.vmm.hostpt import HostPageTable


@pytest.fixture
def hostpt():
    return HostPageTable(PhysicalMemory(1 << 14, "host"))


class TestBacking:
    def test_unbacked_translates_to_none(self, hostpt):
        assert hostpt.translate(5) is None

    def test_ensure_mapped_backs_and_reports_fault(self, hostpt):
        hfn, was_fault = hostpt.ensure_mapped(5)
        assert was_fault
        assert hostpt.translate(5) == hfn

    def test_second_ensure_is_not_a_fault(self, hostpt):
        hostpt.ensure_mapped(5)
        hfn, was_fault = hostpt.ensure_mapped(5)
        assert not was_fault

    def test_distinct_gfns_distinct_hfns(self, hostpt):
        a, _ = hostpt.ensure_mapped(1)
        b, _ = hostpt.ensure_mapped(2)
        assert a != b

    def test_unmap(self, hostpt):
        hostpt.ensure_mapped(5)
        hostpt.unmap(5)
        assert hostpt.translate(5) is None


class TestFlags:
    def test_write_protect(self, hostpt):
        hostpt.ensure_mapped(5)
        hostpt.set_writable(5, False)
        assert not hostpt.leaf_for_gfn(5).writable
        hostpt.set_writable(5, True)
        assert hostpt.leaf_for_gfn(5).writable

    def test_dirty_tracking(self, hostpt):
        hostpt.ensure_mapped(5)
        assert not hostpt.is_dirty(5)
        hostpt.mark_dirty(5)
        assert hostpt.is_dirty(5)
        hostpt.clear_dirty(5)
        assert not hostpt.is_dirty(5)

    def test_dirty_on_unbacked_is_false(self, hostpt):
        assert not hostpt.is_dirty(99)
        hostpt.mark_dirty(99)  # no-op
        hostpt.clear_dirty(99)  # no-op


class TestLargeGranule:
    def test_2m_blocks(self):
        hostpt = HostPageTable(PhysicalMemory(1 << 14, "host"), TWO_MB)
        hfn, was_fault = hostpt.ensure_mapped(5)
        assert was_fault
        # The whole 512-frame block is now backed contiguously.
        hfn_other, was_fault_other = hostpt.ensure_mapped(511)
        assert not was_fault_other
        assert hfn_other - hfn == 511 - 5

    def test_2m_dirty_is_block_wide(self):
        hostpt = HostPageTable(PhysicalMemory(1 << 14, "host"), TWO_MB)
        hostpt.ensure_mapped(5)
        hostpt.mark_dirty(7)
        assert hostpt.is_dirty(100)  # same block
