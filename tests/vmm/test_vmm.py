"""Tests for the VMM facade, exercised through a full System."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.vmm import traps as T


def make(mode, **overrides):
    system = System(sandy_bridge_config(mode=mode, **overrides))
    return system, MachineAPI(system)


def touch_pages(api, base, count, write=False):
    for i in range(count):
        api.access(base + i * 4096, write)


class TestNestedMode:
    def test_no_pt_write_traps(self):
        system, api = make("nested")
        api.spawn()
        base = api.mmap(64 << 12)
        touch_pages(api, base, 64, write=True)
        assert system.vmm.traps.count(T.PT_WRITE) == 0

    def test_host_faults_back_guest_frames(self):
        system, api = make("nested")
        api.spawn()
        base = api.mmap(8 << 12)
        touch_pages(api, base, 8)
        assert system.vmm.traps.count(T.HOST_FAULT) >= 8

    def test_context_switch_free(self):
        system, api = make("nested")
        first = api.spawn()
        second = api.spawn()
        api.switch_to(second)
        api.switch_to(first)
        assert system.vmm.traps.count(T.CONTEXT_SWITCH) == 0

    def test_walks_are_2d(self):
        system, api = make("nested", pwc=type(
            sandy_bridge_config().pwc)(enabled=False))
        api.spawn()
        base = api.mmap(4 << 12)
        touch_pages(api, base, 4)
        touch_pages(api, base, 4)  # re-touch: host frames already backed
        # After warmup, a fresh miss costs 24 refs; flush to force misses.
        system.mmu.flush_all()
        before = system.mmu.counters.walk_refs
        api.read(base)
        assert system.mmu.counters.walk_refs - before == 24


class TestShadowMode:
    def test_pt_writes_trap(self):
        system, api = make("shadow")
        api.spawn()
        base = api.mmap(16 << 12)
        touch_pages(api, base, 16, write=True)
        assert system.vmm.traps.count(T.PT_WRITE) >= 16

    def test_walks_are_native_speed(self):
        system, api = make("shadow", pwc=type(
            sandy_bridge_config().pwc)(enabled=False))
        api.spawn()
        base = api.mmap(4 << 12)
        touch_pages(api, base, 4)
        system.mmu.flush_all()
        before = system.mmu.counters.walk_refs
        api.read(base)
        assert system.mmu.counters.walk_refs - before == 4

    def test_context_switch_traps(self):
        system, api = make("shadow")
        first = api.spawn()
        second = api.spawn()
        api.switch_to(second)
        api.switch_to(first)
        assert system.vmm.traps.count(T.CONTEXT_SWITCH) == 2

    def test_first_write_pays_dirty_sync(self):
        system, api = make("shadow")
        api.spawn()
        base = api.mmap(4 << 12)
        touch_pages(api, base, 4)  # reads: fills are read-only
        before = system.vmm.traps.count(T.DIRTY_SYNC)
        api.write(base)
        assert system.vmm.traps.count(T.DIRTY_SYNC) == before + 1
        # Second write: no further trap.
        api.write(base)
        assert system.vmm.traps.count(T.DIRTY_SYNC) == before + 1

    def test_cow_write_injects_guest_fault(self):
        system, api = make("shadow")
        api.spawn()
        base = api.mmap(4 << 12)
        touch_pages(api, base, 4, write=True)
        api.dedup(base, 4 << 12, group=2)
        faults_before = system.guest_fault_count
        api.write(base + 4096)  # breaks COW sharing
        assert system.guest_fault_count > faults_before

    def test_invlpg_traps(self):
        system, api = make("shadow")
        api.spawn()
        base = api.mmap(4 << 12)
        touch_pages(api, base, 4, write=True)
        before = system.vmm.traps.count(T.INVLPG)
        api.munmap(base, 4 << 12)
        assert system.vmm.traps.count(T.INVLPG) == before + 4


class TestAgileMode:
    def test_far_fewer_pt_traps_than_shadow(self):
        results = {}
        for mode in ("shadow", "agile"):
            system, api = make(mode)
            api.spawn()
            base = api.mmap(256 << 12)
            touch_pages(api, base, 256, write=True)
            results[mode] = system.vmm.traps.count(T.PT_WRITE)
        assert results["agile"] < results["shadow"] / 4

    def test_cr3_cache_elides_context_switch_traps(self):
        system, api = make("agile")
        first = api.spawn()
        second = api.spawn()
        for _round in range(5):
            api.switch_to(second)
            api.switch_to(first)
        traps = system.vmm.traps.count(T.CONTEXT_SWITCH)
        hits = system.vmm.traps.counts.get(T.CR3_CACHE_HIT, 0)
        assert traps == 2  # one cold miss per process
        assert hits == 8

    def test_no_cr3_cache_means_traps(self):
        system, api = make("agile", hw_cr3_cache=False)
        first = api.spawn()
        second = api.spawn()
        for _round in range(5):
            api.switch_to(second)
            api.switch_to(first)
        assert system.vmm.traps.count(T.CONTEXT_SWITCH) == 10

    def test_ad_assist_replaces_dirty_traps(self):
        system, api = make("agile", hw_ad_assist=True)
        api.spawn()
        base = api.mmap(4 << 12)
        touch_pages(api, base, 4)
        api.write(base)
        assert system.vmm.traps.count(T.DIRTY_SYNC) == 0

    def test_without_ad_assist_dirty_traps_return(self):
        from dataclasses import replace

        # Keep the leaf shadow-covered (huge write threshold) so the
        # dirty-bit protocol is observable.
        config = sandy_bridge_config(mode="agile", hw_ad_assist=False)
        config = replace(config, policy=replace(config.policy, write_threshold=10_000))
        from repro.core.machine import System as _System

        system = _System(config)
        api = MachineAPI(system)
        api.spawn()
        base = api.mmap(4 << 12)
        touch_pages(api, base, 4)
        api.write(base)
        assert system.vmm.traps.count(T.DIRTY_SYNC) == 1

    def test_mode_mix_recorded(self):
        system, api = make("agile")
        api.spawn()
        base = api.mmap(64 << 12)
        touch_pages(api, base, 64, write=True)
        for _round in range(3):
            touch_pages(api, base, 64)
        depth_counts = system.mmu.counters.walks_by_depth
        assert sum(depth_counts.values()) == system.mmu.counters.tlb_misses

    def test_nested_coverage_reported(self):
        system, api = make("agile")
        proc = api.spawn()
        base = api.mmap(64 << 12)
        touch_pages(api, base, 64, write=True)
        coverage = system.vmm.nested_coverage(proc)
        assert 0.0 <= coverage <= 1.0

    def test_start_nested_policy(self):
        from dataclasses import replace

        config = sandy_bridge_config(mode="agile")
        config = replace(config, policy=replace(config.policy, start_nested=True))
        system = System(config)
        api = MachineAPI(system)
        proc = api.spawn()
        base = api.mmap(8 << 12)
        touch_pages(api, base, 8, write=True)
        assert system.vmm.states[proc.pid].manager.fully_nested
        assert system.vmm.traps.count(T.PT_WRITE) == 0


class TestProcessTeardown:
    @pytest.mark.parametrize("mode", ["nested", "shadow", "agile"])
    def test_exit_cleans_up(self, mode):
        system, api = make(mode)
        keeper = api.spawn()
        victim = api.spawn()
        api.switch_to(victim)
        base = api.mmap(8 << 12)
        touch_pages(api, base, 8, write=True)
        api.switch_to(keeper)
        api.exit(victim)
        assert victim.pid not in system.vmm.states
        # The survivor still runs fine.
        base2 = api.mmap(4 << 12)
        touch_pages(api, base2, 4, write=True)
