"""Unit tests for the shadow/agile page-table manager.

Exercised through a real guest kernel + process (bare platform) with a
manually attached manager, so the observer event stream is authentic.
"""

import pytest

from repro.common.params import FOUR_KB, pt_index
from repro.guest.process import GuestProcess
from repro.mem.pagetable import PageTableObserver
from repro.mem.physmem import PhysicalMemory
from repro.vmm.hostpt import HostPageTable
from repro.vmm.shadowmgr import NODE_NESTED, NODE_SHADOW, InvalidationSink, ShadowManager


class RecordingSink(InvalidationSink):
    def __init__(self):
        self.pages = []
        self.asids = []
        self.pwc_flushes = 0

    def invalidate_page(self, asid, va):
        self.pages.append((asid, va))

    def invalidate_asid(self, asid):
        self.asids.append(asid)

    def flush_pwc(self):
        self.pwc_flushes += 1


class ManagerObserver(PageTableObserver):
    """Routes one process's PT events into a manager, recording outcomes."""

    def __init__(self):
        self.manager = None
        self.events = []

    def node_allocated(self, table, node, parent):
        self.manager.on_node_allocated(node, parent)

    def pte_written(self, table, node, index, old, new):
        self.events.append(self.manager.on_pte_written(node, index, old, new))

    def node_freed(self, table, node):
        self.manager.on_node_freed(node)


class Setup:
    def __init__(self, agile=True, ad_assist=False, start_nested=False):
        self.guest_mem = PhysicalMemory(1 << 14, "guest")
        self.host_mem = PhysicalMemory(1 << 15, "host")
        self.hostpt = HostPageTable(self.host_mem)
        self.sink = RecordingSink()
        self.observer = ManagerObserver()
        # Manager must exist before the process allocates its root node,
        # mirroring VMM.observer_for; swap in after construction.
        self.manager = None

        class _Proxy(PageTableObserver):
            def __init__(proxy):
                pass

        self.manager = ShadowManager(
            pid=1,
            host_mem=self.host_mem,
            guest_mem=self.guest_mem,
            hostpt=self.hostpt,
            page_size=FOUR_KB,
            inval=self.sink,
            agile=agile,
            start_nested=start_nested,
            ad_assist=ad_assist,
        )
        self.observer.manager = self.manager
        self.proc = GuestProcess(1, self.guest_mem, observer=self.observer)

    def map_guest(self, va, writable=True):
        gfn = self.guest_mem.alloc_data_page()
        self.proc.page_table.map(va, gfn, writable=writable)
        return gfn


VA = (1 << 39) | (2 << 30) | (3 << 21) | (4 << 12)


@pytest.fixture
def setup():
    return Setup()


class TestTracking:
    def test_root_registered(self, setup):
        meta = setup.manager.node_meta[setup.proc.gptr]
        assert meta.level == 4
        assert meta.prefix == 0
        assert meta.mode == NODE_SHADOW

    def test_nodes_get_prefixes_on_link(self, setup):
        setup.map_guest(VA)
        prefixes = {
            meta.level: meta.prefix for meta in setup.manager.node_meta.values()
        }
        assert prefixes[4] == 0
        assert prefixes[3] == (1 << 39)
        assert prefixes[2] == (1 << 39) | (2 << 30)
        assert prefixes[1] == (1 << 39) | (2 << 30) | (3 << 21)

    def test_gpt_nodes_are_host_backed(self, setup):
        setup.map_guest(VA)
        for gfn in setup.manager.node_meta:
            assert setup.hostpt.translate(gfn) is not None

    def test_writes_are_mediated_under_shadow(self, setup):
        setup.map_guest(VA)
        kinds = [kind for kind, _ in setup.observer.events]
        assert kinds and all(kind == "mediated" for kind in kinds)


class TestFill:
    def test_fill_installs_merged_leaf(self, setup):
        gfn = setup.map_guest(VA)
        assert setup.manager.fill_for(VA) == "filled"
        spte, level = setup.manager.spt.lookup(VA)
        assert spte is not None
        assert level == 1
        assert spte.frame == setup.hostpt.translate(gfn)

    def test_fill_without_guest_mapping_is_guest_fault(self, setup):
        assert setup.manager.fill_for(VA) == "guest_fault"

    def test_fill_write_enable_not_propagated(self, setup):
        setup.map_guest(VA, writable=True)
        setup.manager.fill_for(VA)
        spte, _ = setup.manager.spt.lookup(VA)
        assert not spte.writable  # dirty protocol: first write must fault

    def test_fill_sets_guest_accessed(self, setup):
        setup.map_guest(VA)
        setup.manager.fill_for(VA)
        gpte, _ = setup.proc.page_table.lookup(VA)
        assert gpte.accessed

    def test_fill_with_ad_assist_propagates_writable(self):
        setup = Setup(ad_assist=True)
        setup.map_guest(VA, writable=True)
        setup.manager.fill_for(VA)
        spte, _ = setup.manager.spt.lookup(VA)
        assert spte.writable


class TestProtectionFix:
    def test_dirty_protocol(self, setup):
        setup.map_guest(VA, writable=True)
        setup.manager.fill_for(VA)
        assert setup.manager.protection_fix(VA) == "dirty_fixed"
        spte, _ = setup.manager.spt.lookup(VA)
        gpte, _ = setup.proc.page_table.lookup(VA)
        assert spte.writable and spte.dirty
        assert gpte.dirty
        assert (1, VA) in setup.sink.pages

    def test_readonly_guest_pte_is_guest_fault(self, setup):
        setup.map_guest(VA, writable=False)
        setup.manager.fill_for(VA)
        assert setup.manager.protection_fix(VA) == "guest_fault"

    def test_missing_shadow_leaf_refills(self, setup):
        setup.map_guest(VA, writable=True)
        assert setup.manager.protection_fix(VA) == "refill"


class TestSync:
    def test_guest_unmap_zaps_shadow(self, setup):
        setup.map_guest(VA)
        setup.manager.fill_for(VA)
        setup.proc.page_table.unmap(VA)
        spte, _ = setup.manager.spt.lookup(VA)
        assert spte is None
        assert (1, VA) in setup.sink.pages

    def test_guest_protect_zaps_shadow(self, setup):
        setup.map_guest(VA)
        setup.manager.fill_for(VA)
        setup.proc.page_table.set_flags(VA, writable=False)
        spte, _ = setup.manager.spt.lookup(VA)
        assert spte is None

    def test_shadow_coherent_after_remap(self, setup):
        setup.map_guest(VA)
        setup.manager.fill_for(VA)
        new_gfn = setup.guest_mem.alloc_data_page()
        setup.proc.page_table.map(VA, new_gfn)
        assert setup.manager.fill_for(VA) == "filled"
        spte, _ = setup.manager.spt.lookup(VA)
        assert spte.frame == setup.hostpt.translate(new_gfn)


class TestModeSwitching:
    def _leaf_gfn(self, setup, va):
        """gfn of the guest leaf-level PT node covering va."""
        node = setup.proc.page_table.root
        for level in (4, 3, 2):
            node = setup.proc.page_table.node_at(node.get(pt_index(va, level)).frame)
        return node.frame

    def test_switch_leaf_node(self, setup):
        setup.map_guest(VA)
        setup.manager.fill_for(VA)
        leaf_gfn = self._leaf_gfn(setup, VA)
        assert setup.manager.switch_to_nested(leaf_gfn)
        assert setup.manager.node_meta[leaf_gfn].mode == NODE_NESTED
        # Switching bit is at level 2, pointing at the guest node.
        node = setup.manager._descend(2, VA)
        spte = node.get(pt_index(VA, 2))
        assert spte.switching
        assert spte.frame == leaf_gfn
        assert setup.sink.pwc_flushes >= 1

    def test_writes_after_switch_are_direct(self, setup):
        setup.map_guest(VA)
        leaf_gfn = self._leaf_gfn(setup, VA)
        setup.manager.switch_to_nested(leaf_gfn)
        setup.observer.events.clear()
        setup.proc.page_table.set_flags(VA, writable=False)
        assert setup.observer.events == [("direct", None)]
        assert setup.hostpt.is_dirty(leaf_gfn)

    def test_switch_root(self, setup):
        setup.map_guest(VA)
        setup.manager.fill_for(VA)
        assert setup.manager.switch_to_nested(setup.proc.gptr)
        assert setup.manager.root_switched
        for meta in setup.manager.node_meta.values():
            assert meta.mode == NODE_NESTED

    def test_switch_subtree_marks_descendants(self, setup):
        setup.map_guest(VA)
        setup.map_guest(VA + (1 << 21))  # sibling leaf node under same L2
        l2_node = setup.proc.page_table.root
        for level in (4, 3):
            l2_node = setup.proc.page_table.node_at(
                l2_node.get(pt_index(VA, level)).frame
            )
        setup.manager.switch_to_nested(l2_node.frame)
        nested = [g for g, m in setup.manager.node_meta.items()
                  if m.mode == NODE_NESTED]
        assert l2_node.frame in nested
        assert len(nested) == 3  # the L2 node + two leaf nodes

    def test_fill_across_nested_boundary_installs_switch(self, setup):
        setup.map_guest(VA)
        leaf_gfn = self._leaf_gfn(setup, VA)
        setup.manager.switch_to_nested(leaf_gfn)
        # Zap everything, then fill: must reinstall the switching entry.
        for index in list(setup.manager.spt.root.entries):
            setup.manager.spt.clear_subtree(setup.manager.spt.root, index)
        assert setup.manager.fill_for(VA) == "switch_installed"
        node = setup.manager._descend(2, VA)
        assert node.get(pt_index(VA, 2)).switching

    def test_revert_leaf(self, setup):
        setup.map_guest(VA)
        leaf_gfn = self._leaf_gfn(setup, VA)
        setup.manager.switch_to_nested(leaf_gfn)
        assert setup.manager.revert_to_shadow(leaf_gfn)
        assert setup.manager.node_meta[leaf_gfn].mode == NODE_SHADOW
        # Switch entry removed; fill works as plain shadow again.
        assert setup.manager.fill_for(VA) == "filled"

    def test_revert_under_nested_parent_rejected(self, setup):
        setup.map_guest(VA)
        setup.manager.switch_to_nested(setup.proc.gptr)
        leaf_gfn = self._leaf_gfn(setup, VA)
        with pytest.raises(Exception):
            setup.manager.revert_to_shadow(leaf_gfn)

    def test_revert_all(self, setup):
        setup.map_guest(VA)
        setup.manager.switch_to_nested(setup.proc.gptr)
        reverted = setup.manager.revert_all()
        assert reverted == len(setup.manager.node_meta)
        assert not setup.manager.root_switched
        assert setup.manager.fill_for(VA) == "filled"

    def test_switch_requires_agile(self):
        setup = Setup(agile=False)
        setup.map_guest(VA)
        with pytest.raises(Exception):
            setup.manager.switch_to_nested(setup.proc.gptr)


class TestStartNested:
    def test_fully_nested_writes_direct(self):
        setup = Setup(start_nested=True)
        setup.map_guest(VA)
        kinds = {kind for kind, _ in setup.observer.events}
        assert kinds == {"direct"}

    def test_fill_reports_root_switch(self):
        setup = Setup(start_nested=True)
        setup.map_guest(VA)
        assert setup.manager.fill_for(VA) == "root_switch"
        assert setup.manager.root_switched

    def test_enable_shadow_coverage(self):
        setup = Setup(start_nested=True)
        setup.map_guest(VA)
        setup.manager.enable_shadow_coverage()
        assert not setup.manager.fully_nested
        assert setup.manager.fill_for(VA) == "filled"
