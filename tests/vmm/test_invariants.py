"""Paranoid-mode invariant checker: clean runs pass, corruption raises.

Each corruption test injects one precise defect into an otherwise
healthy simulated machine and asserts the checker names the violated
invariant and carries enough walk context to debug it.
"""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import Simulator
from repro.hw.tlb import TLBEntry
from repro.vmm.invariants import (
    NESTED_SUBTREES,
    SHADOW_COHERENCE,
    SWITCHING_BITS,
    TLB_COHERENCE,
    InvariantViolation,
)
from repro.vmm.shadowmgr import NODE_NESTED, NODE_SHADOW
from repro.vmm.shsp import TECH_NESTED, TECH_SHADOW
from repro.workloads.suite import DedupLike


def run_agile(ops=10_000):
    system = System(sandy_bridge_config(mode="agile", paranoid=True))
    Simulator(system).run(DedupLike(ops=ops))
    return system


def shadowed_state(system):
    """A live process with actual shadow leaves to corrupt."""
    for state in system.vmm.states.values():
        if state.manager is None or state.manager.fully_nested:
            continue
        if list(state.manager.spt.iter_leaves()):
            return state
    raise AssertionError("no process with shadow coverage")


class TestCleanRuns:
    def test_agile_run_is_coherent_and_checked(self):
        system = run_agile()
        inv = system.vmm.invariants
        assert inv.checks > 100
        assert inv.full_checks > 0
        system.check_invariants()  # explicit final sweep also passes

    @pytest.mark.parametrize("mode", ("nested", "shadow", "shsp"))
    def test_other_modes_are_coherent(self, mode):
        system = System(sandy_bridge_config(mode=mode, paranoid=True))
        Simulator(system).run(DedupLike(ops=6_000))
        assert system.vmm.invariants.checks > 0

    def test_paranoid_off_means_no_checker(self):
        system = System(sandy_bridge_config(mode="agile"))
        assert system.vmm.invariants is None
        system.check_invariants()  # no-op, no crash


class TestShadowCoherence:
    def test_corrupted_shadow_frame_is_detected_with_context(self):
        system = run_agile()
        state = shadowed_state(system)
        va, spte, _level = list(state.manager.spt.iter_leaves())[0]
        spte.frame += 1
        with pytest.raises(InvariantViolation) as excinfo:
            system.check_invariants()
        violation = excinfo.value
        assert violation.invariant == SHADOW_COHERENCE
        assert violation.context["pid"] == state.pid
        assert violation.context["va"] == va
        assert violation.context["actual"] == spte.frame
        assert "shadow_path" in violation.context
        assert "guest_path" in violation.context
        assert "0x" in str(violation)  # VAs render in hex

    def test_stale_shadow_leaf_over_unmapped_page_is_detected(self):
        system = run_agile()
        state = shadowed_state(system)
        manager = state.manager
        va, _spte, _level = list(manager.spt.iter_leaves())[0]
        # Rip the mapping out of the guest table behind the VMM's back
        # (bypassing the observer, as a simulator bug would).
        gnode = manager._guest_node(manager.root_gfn)
        from repro.common.params import LEAF_LEVEL, ROOT_LEVEL, pt_index

        for level in range(ROOT_LEVEL, LEAF_LEVEL, -1):
            gpte = gnode.get(pt_index(va, level))
            if gpte.huge:
                break
            gnode = manager._guest_node(gpte.frame)
        gnode.clear(pt_index(va, LEAF_LEVEL))
        with pytest.raises(InvariantViolation) as excinfo:
            system.check_invariants()
        assert excinfo.value.invariant in (SHADOW_COHERENCE, TLB_COHERENCE)

    def test_overbroad_write_permission_is_detected(self):
        system = run_agile()
        state = shadowed_state(system)
        manager = state.manager
        for va, spte, _level in manager.spt.iter_leaves():
            if not spte.writable:
                spte.writable = True
                spte.dirty = True
                break
        else:
            pytest.skip("no read-only shadow leaf in this run")
        with pytest.raises(InvariantViolation) as excinfo:
            system.check_invariants()
        assert excinfo.value.invariant == SHADOW_COHERENCE


class TestSwitchingBits:
    def test_switch_entry_to_shadow_mode_node_is_detected(self):
        system = run_agile()
        state = shadowed_state(system)
        manager = state.manager
        target = None
        for gfn, meta in manager.node_meta.items():
            if (meta.mode == NODE_SHADOW and meta.prefix is not None
                    and gfn != manager.root_gfn and meta.level >= 1):
                target = (gfn, meta)
                break
        assert target is not None
        gfn, meta = target
        manager._install_switch(meta.prefix, meta.level + 1, gfn)
        with pytest.raises(InvariantViolation) as excinfo:
            system.check_invariants()
        assert excinfo.value.invariant == SWITCHING_BITS
        assert "shadow-mode node" in excinfo.value.message


class TestNestedSubtrees:
    def test_mode_inheritance_violation_is_detected(self):
        system = run_agile()
        state = shadowed_state(system)
        manager = state.manager
        # A shadow-mode node whose parent we flip to nested: mode
        # switches must move whole subtrees, so this state is corrupt.
        for gfn, meta in manager.node_meta.items():
            parent_meta = manager.node_meta.get(meta.parent_gfn or -1)
            if (meta.mode == NODE_SHADOW and parent_meta is not None
                    and meta.parent_gfn != manager.root_gfn
                    and parent_meta.mode == NODE_SHADOW):
                parent_meta.mode = NODE_NESTED
                break
        else:
            raise AssertionError("no interior node to corrupt")
        with pytest.raises(InvariantViolation) as excinfo:
            system.check_invariants()
        assert excinfo.value.invariant == NESTED_SUBTREES


class TestTLBCoherence:
    def test_stale_tlb_frame_is_detected(self):
        system = run_agile()
        state = shadowed_state(system)
        proc = state.proc
        va = next(va for va, _pte, _level in proc.page_table.iter_leaves())
        bogus = TLBEntry(asid=proc.asid, vpn=va >> 12, frame=999_999,
                         page_shift=12, writable=False)
        system.mmu.hierarchy.hierarchies[12].l1d.insert(bogus)
        with pytest.raises(InvariantViolation) as excinfo:
            system.check_invariants()
        assert excinfo.value.invariant == TLB_COHERENCE
        assert excinfo.value.context["pid"] == state.pid


class TestSHSPRebuildRegression:
    def test_enable_shadow_coverage_drops_stale_leaves(self):
        """Guest unmaps during SHSP's nested phase must not survive in
        the shadow table after the switch back to shadow paging."""
        system = System(sandy_bridge_config(mode="shsp", paranoid=True))
        kernel = system.kernel
        proc = kernel.create_process()
        state = system.vmm.states[proc.pid]
        manager = state.manager
        page = system.config.page_size.bytes
        base = kernel.mmap(proc, 8 * page, populate=True)
        for i in range(8):
            system.access(base + i * page)  # shadow phase: fill the sPT
        assert any(va == base for va, _p, _l in manager.spt.iter_leaves())
        # Nested phase: guest PT updates go direct, no shadow sync.
        state.shsp.technique = TECH_NESTED
        manager.fully_nested = True
        kernel.munmap(proc, base, 4 * page)
        # Back to shadow: the rebuild must start from a clean table.
        state.shsp.technique = TECH_SHADOW
        manager.enable_shadow_coverage()
        manager.rebuild_full(proc.page_table)
        shadow_vas = {va for va, _p, _l in manager.spt.iter_leaves()}
        assert base not in shadow_vas
        system.check_invariants()
