"""Failure injection: exhaustion and misuse surface cleanly.

A simulator that silently wraps or corrupts state on resource
exhaustion produces garbage results; these tests pin the failure
behaviour instead.
"""

import pytest

from repro.common.config import sandy_bridge_config
from repro.common.errors import SimulationError
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.guest.kernel import GuestProtectionError
from repro.guest.process import GuestSegfault
from repro.mem.physmem import OutOfMemoryError


def build(mode, **overrides):
    system = System(sandy_bridge_config(mode=mode, **overrides))
    return system, MachineAPI(system)


class TestGuestMemoryExhaustion:
    def test_oom_on_demand_faulting(self):
        # Native RAM is sized by guest_mem_frames: the same guest
        # machine as the virtualized modes, minus the VMM.
        _system, api = build("native", guest_mem_frames=64)
        api.spawn(code_pages=1)
        base = api.mmap(1 << 20)  # reserving is fine...
        with pytest.raises(OutOfMemoryError):
            for i in range(256):  # ...backing it all is not
                api.write(base + i * 4096)

    def test_oom_leaves_earlier_pages_intact(self):
        system, api = build("native", guest_mem_frames=80)
        api.spawn(code_pages=1)
        base = api.mmap(1 << 20)
        written = 0
        try:
            for i in range(256):
                api.write(base + i * 4096)
                written += 1
        except OutOfMemoryError:
            pass
        assert written > 0
        # Previously faulted pages still translate.
        api.read(base)

    def test_host_memory_exhaustion_virtualized(self):
        system, api = build("nested", guest_mem_frames=1 << 12,
                            host_mem_frames=96)
        api.spawn(code_pages=1)
        base = api.mmap(1 << 20)
        with pytest.raises(OutOfMemoryError):
            for i in range(256):
                api.write(base + i * 4096)


class TestAccessViolations:
    @pytest.mark.parametrize("mode", ["native", "nested", "shadow", "agile"])
    def test_unmapped_access_segfaults(self, mode):
        _system, api = build(mode)
        api.spawn()
        with pytest.raises(GuestSegfault):
            api.read(0x7E0000000000)

    @pytest.mark.parametrize("mode", ["native", "nested", "shadow", "agile"])
    def test_write_to_readonly_vma(self, mode):
        _system, api = build(mode)
        api.spawn()
        base = api.mmap(4 << 12, writable=False)
        api.read(base)  # reads fine
        with pytest.raises(GuestProtectionError):
            api.write(base)

    def test_segfault_names_the_va(self):
        _system, api = build("shadow")
        api.spawn()
        with pytest.raises(GuestSegfault) as exc:
            api.read(0x7E0000001234)
        assert exc.value.va == 0x7E0000001234


class TestKernelMisuse:
    def test_double_destroy_rejected(self):
        system, api = build("agile")
        first = api.spawn()
        second = api.spawn()
        api.exit(second)
        with pytest.raises(SimulationError):
            system.kernel.destroy_process(second)

    def test_mmap_zero_rejected(self):
        system, api = build("native")
        api.spawn()
        with pytest.raises(SimulationError):
            api.mmap(0)

    def test_munmap_unmapped_rejected(self):
        _system, api = build("native")
        api.spawn()
        with pytest.raises(SimulationError):
            api.munmap(0xDD000000, 4096)


class TestRecoveryAfterFailure:
    @pytest.mark.parametrize("mode", ["shadow", "agile"])
    def test_machine_usable_after_segfault(self, mode):
        _system, api = build(mode)
        api.spawn()
        base = api.mmap(8 << 12)
        with pytest.raises(GuestSegfault):
            api.read(0x7E0000000000)
        for i in range(8):
            api.write(base + i * 4096)
        for i in range(8):
            api.read(base + i * 4096)
