"""Section V: large pages used at only one translation stage.

"When large pages are used only in one stage of translation (e.g.,
guest only), they are in effect broken into smaller pages for entry
into the TLB." These tests pin that behaviour for every virtualized
mode, both directions of mismatch.
"""

import pytest

from repro.common.config import sandy_bridge_config
from repro.common.params import FOUR_KB, TWO_MB
from repro.core.machine import System
from repro.core.simulator import MachineAPI


def build(mode, guest, host):
    config = sandy_bridge_config(mode=mode, page_size=guest, host_page_size=host)
    system = System(config)
    api = MachineAPI(system)
    api.spawn(code_pages=1)
    return system, api


class TestGuestLargeHostSmall:
    @pytest.mark.parametrize("mode", ["nested", "shadow", "agile"])
    def test_entries_broken_to_4k(self, mode):
        system, api = build(mode, guest=TWO_MB, host=FOUR_KB)
        base = api.mmap(2 << 21)
        outcome = api.write(base + 12345)
        # The effective translation granule is the host's 4K.
        tlb_4k = system.mmu.hierarchy.hierarchies[12]
        assert tlb_4k.l1d.occupancy() >= 1

    @pytest.mark.parametrize("mode", ["nested", "shadow", "agile"])
    def test_neighboring_4k_pieces_miss_separately(self, mode):
        system, api = build(mode, guest=TWO_MB, host=FOUR_KB)
        base = api.mmap(1 << 21)
        api.write(base)
        misses_before = system.mmu.counters.tlb_misses
        api.read(base + 4096)  # same 2M guest page, different 4K piece
        assert system.mmu.counters.tlb_misses > misses_before

    @pytest.mark.parametrize("mode", ["nested", "shadow", "agile"])
    def test_translation_correct_across_pieces(self, mode):
        system, api = build(mode, guest=TWO_MB, host=FOUR_KB)
        base = api.mmap(1 << 21)
        api.write(base)
        proc = system.kernel.current
        gfn_base = proc.page_table.translate(base)[0]
        for offset_pages in (0, 1, 7, 511):
            outcome = api.read(base + offset_pages * 4096)
            expected = system.vmm.hostpt.translate(gfn_base + offset_pages)
            assert outcome.frame == expected, offset_pages


class TestGuestSmallHostLarge:
    @pytest.mark.parametrize("mode", ["nested", "shadow", "agile"])
    def test_entries_enter_4k_array(self, mode):
        system, api = build(mode, guest=FOUR_KB, host=TWO_MB)
        base = api.mmap(8 << 12)
        for i in range(8):
            api.write(base + i * 4096)
        tlb_4k = system.mmu.hierarchy.hierarchies[12]
        assert tlb_4k.l1d.occupancy() >= 8

    @pytest.mark.parametrize("mode", ["nested", "shadow", "agile"])
    def test_host_backs_whole_blocks(self, mode):
        system, api = build(mode, guest=FOUR_KB, host=TWO_MB)
        base = api.mmap(8 << 12)
        api.write(base)
        proc = system.kernel.current
        gfn = proc.page_table.translate(base)[0]
        # The covering 512-frame host block is contiguous.
        block = gfn // 512 * 512
        hfn0 = system.vmm.hostpt.translate(block)
        hfn1 = system.vmm.hostpt.translate(block + 1)
        assert hfn1 == hfn0 + 1


class TestMatchedSizesStillWork:
    @pytest.mark.parametrize("mode", ["nested", "shadow", "agile"])
    def test_2m_both_stages_uses_2m_array(self, mode):
        system, api = build(mode, guest=TWO_MB, host=TWO_MB)
        base = api.mmap(1 << 21)
        api.write(base)
        tlb_2m = system.mmu.hierarchy.hierarchies[21]
        assert tlb_2m.l1d.occupancy() >= 1
        # Whole 2M page: one entry serves every offset.
        misses = system.mmu.counters.tlb_misses
        api.read(base + (1 << 20))
        assert system.mmu.counters.tlb_misses == misses
