"""Cross-mode integration invariants.

The same deterministic workload must see the same *guest-visible*
world under every paging technique: identical operation counts,
identical guest page tables, and translations that always agree with
the composed gPT+hPT mapping.
"""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI, Simulator
from repro.workloads.suite import DedupLike, GccLike, make_suite

MODES = ("native", "nested", "shadow", "agile", "shsp")


def run_system(mode, workload):
    # Paranoid mode: every VMtrap and mode switch in these runs also
    # re-validates the shadow/guest/TLB coherence invariants.
    system = System(sandy_bridge_config(mode=mode, paranoid=True))
    metrics = Simulator(system).run(workload)
    return system, metrics


class TestGuestVisibleDeterminism:
    @pytest.mark.parametrize("mode", MODES)
    def test_same_guest_page_tables_as_native(self, mode):
        """The guest's own page tables end up identical regardless of
        how the VMM virtualizes them."""
        workload = GccLike(ops=8_000)
        native_system, _ = run_system("native", GccLike(ops=8_000))
        other_system, _ = run_system(mode, workload)
        native_proc = max(native_system.kernel.processes.values(),
                          key=lambda p: p.resident_pages)
        other_proc = max(other_system.kernel.processes.values(),
                         key=lambda p: p.resident_pages)
        native_leaves = {va: pte.frame for va, pte, _ in
                         native_proc.page_table.iter_leaves()}
        other_leaves = {va: pte.frame for va, pte, _ in
                        other_proc.page_table.iter_leaves()}
        assert native_leaves == other_leaves

    @pytest.mark.parametrize("mode", MODES)
    def test_same_op_counts(self, mode):
        _sys_a, native = run_system("native", DedupLike(ops=6_000))
        _sys_b, other = run_system(mode, DedupLike(ops=6_000))
        assert native.ops == other.ops
        assert native.reads == other.reads
        assert native.writes == other.writes


class TestTranslationAgreement:
    @pytest.mark.parametrize("mode", ("nested", "shadow", "agile", "shsp"))
    def test_hardware_agrees_with_composed_tables(self, mode):
        system, _metrics = run_system(mode, DedupLike(ops=6_000))
        kernel = system.kernel
        vmm = system.vmm
        checked = 0
        for proc in list(kernel.processes.values()):
            kernel.context_switch(proc.pid)
            for va, gpte, _level in list(proc.page_table.iter_leaves()):
                outcome = system.access(va, is_write=False)
                gfn = proc.page_table.translate(va)[0]
                assert outcome.frame == vmm.hostpt.translate(gfn), (mode, hex(va))
                checked += 1
        assert checked > 50


class TestOverheadOrdering:
    def test_full_ordering_for_update_heavy_workload(self):
        """dedup: shadow pays traps, nested pays walks, agile pays least."""
        totals = {}
        for mode in ("nested", "shadow", "shsp", "agile"):
            _system, metrics = run_system(mode, DedupLike(ops=40_000))
            totals[mode] = metrics.page_walk_overhead + metrics.vmm_overhead
        assert totals["agile"] <= min(totals["nested"], totals["shadow"]) * 1.05
        assert totals["agile"] <= totals["shsp"] * 1.05

    def test_native_is_floor(self):
        for workload in make_suite(ops=10_000, names={"astar"}):
            _n, native = run_system("native", workload)
        for workload in make_suite(ops=10_000, names={"astar"}):
            _a, agile = run_system("agile", workload)
        native_total = native.page_walk_overhead + native.vmm_overhead
        agile_total = agile.page_walk_overhead + agile.vmm_overhead
        assert agile_total >= native_total * 0.95
