"""The ``core`` config key: validation, dispatch, and its REPRO502 leg.

The core selector is config like any other — it must be rejected early
with a clear message when bogus, it must actually change which system
class is built, and its ``VALID_CORES`` value set is guarded by the
extended REPRO502 dead-key check: a core name that validation accepts
but nothing outside config.py handles is a lie waiting for a user.
"""

import pytest

from repro.common.config import (
    CORE_FASTPATH,
    CORE_REFERENCE,
    VALID_CORES,
    sandy_bridge_config,
)
from repro.common.errors import SimulationError
from repro.core.fastpath import FastSystem
from repro.core.machine import System
from repro.core.simulator import run_workload
from repro.lint.engine import LintEngine
from repro.lint.flow.rules import ConfigKeysRule
from repro.workloads.suite import McfLike


def test_config_rejects_unknown_core():
    with pytest.raises(ValueError) as excinfo:
        sandy_bridge_config(core="bogus")
    message = str(excinfo.value)
    assert "unknown simulation core" in message
    assert "'bogus'" in message
    for core in VALID_CORES:
        assert core in message  # the error teaches the valid choices


def test_config_accepts_every_valid_core():
    for core in VALID_CORES:
        assert sandy_bridge_config(core=core).core == core


def test_system_rejects_core_that_dodged_config_validation():
    """Belt and braces: a config whose ``core`` was spoofed past
    ``__post_init__`` still cannot build a machine."""
    config = sandy_bridge_config()
    object.__setattr__(config, "core", "turbo")  # frozen-dataclass bypass
    with pytest.raises(SimulationError) as excinfo:
        System(config)
    assert "unknown simulation core" in str(excinfo.value)


def test_system_constructor_dispatches_on_core():
    assert type(System(sandy_bridge_config())) is System
    assert type(System(sandy_bridge_config(core=CORE_REFERENCE))) is System
    fast = System(sandy_bridge_config(core=CORE_FASTPATH))
    assert type(fast) is FastSystem
    assert isinstance(fast, System)
    # Asking for FastSystem directly also works and stays FastSystem.
    assert type(FastSystem(sandy_bridge_config(core=CORE_FASTPATH))) \
        is FastSystem


def test_run_workload_core_override_matches_reference():
    """The public one-call entry point accepts ``core=`` and the two
    cores produce the identical RunMetrics for a real suite workload."""
    ref = run_workload(McfLike, seed=7, ops=2000, mode="agile")
    fast = run_workload(McfLike, seed=7, ops=2000, mode="agile",
                        core=CORE_FASTPATH)
    assert ref.to_dict() == fast.to_dict()


# -- the REPRO502 enum-member leg, on a synthetic tree ----------------------


def _lint_fake_repro(tmp_path, sources):
    for relpath, source in sources.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    findings, _checked = LintEngine([ConfigKeysRule()]).run(
        [str(tmp_path / "repro")])
    return findings


_CONFIG_WITH_ENUM = (
    "from dataclasses import dataclass\n"
    "CORE_ALPHA = \"alpha\"\n"
    "CORE_BETA = \"beta\"\n"
    "VALID_CORES = (CORE_ALPHA, CORE_BETA)\n"
    "@dataclass\n"
    "class MachineConfig:\n"
    "    core: str = CORE_ALPHA\n"
)


def test_repro502_flags_unhandled_enum_member(tmp_path):
    """A ``VALID_*`` member nothing outside config.py handles is dead."""
    findings = _lint_fake_repro(tmp_path, {
        "common/config.py": _CONFIG_WITH_ENUM,
        "core/machine.py": (
            "from repro.common.config import CORE_ALPHA\n"
            "def build(cfg):\n"
            "    return (cfg.core, CORE_ALPHA)\n"
        ),
    })
    assert len(findings) == 1
    assert findings[0].rule_id == "REPRO502"
    assert "VALID_CORES" in findings[0].message
    assert "'beta'" in findings[0].message
    assert "dead key" in findings[0].message


def test_repro502_enum_clean_when_every_member_handled(tmp_path):
    """Handling by constant name or by string literal both count."""
    findings = _lint_fake_repro(tmp_path, {
        "common/config.py": _CONFIG_WITH_ENUM,
        "core/machine.py": (
            "from repro.common.config import CORE_ALPHA\n"
            "def build(cfg):\n"
            "    if cfg.core == \"beta\":\n"
            "        return \"fast\"\n"
            "    return (cfg.core, CORE_ALPHA)\n"
        ),
    })
    assert findings == []
