"""Shared builders for the fastpath differential equivalence suite."""

import random

from repro.common.config import sandy_bridge_config
from repro.core.fastpath import FastSystem, final_translation_state
from repro.core.machine import System


def build_pair(mode, page_size="4K", **overrides):
    """A (reference, fastpath) System pair in identical configurations."""
    from repro.common.params import PAGE_SIZES

    size = PAGE_SIZES[page_size] if isinstance(page_size, str) else page_size
    ref = System(sandy_bridge_config(mode, size, **overrides))
    fast = System(sandy_bridge_config(mode, size, core="fastpath", **overrides))
    assert type(fast) is FastSystem
    return ref, fast


def provision(system, pages):
    """One process with a ``pages``-page anonymous mapping; returns base."""
    proc = system.kernel.create_process()
    return system.kernel.mmap(proc, size=pages * 4096)


def seeded_stream(seed, base, pages, ops, write_fraction=0.3, page_shift=12):
    """A deterministic (va, is_write) stream with mixed locality."""
    rng = random.Random(seed)
    hot = max(4, pages // 8)
    stream = []
    for _ in range(ops):
        page = rng.randrange(hot) if rng.random() < 0.7 else rng.randrange(pages)
        va = base + (page << page_shift) + rng.randrange(1 << page_shift)
        stream.append((va, rng.random() < write_fraction))
    return stream


def run_reference(system, stream):
    for va, is_write in stream:
        system.access(va, is_write)


def run_batched(system, stream):
    """Drive the stream through access_batch in write-homogeneous runs."""
    i = 0
    n = len(stream)
    while i < n:
        j = i
        is_write = stream[i][1]
        while j < n and stream[j][1] == is_write:
            j += 1
        system.access_batch([va for va, _ in stream[i:j]], is_write=is_write)
        i = j


def assert_equivalent(ref, fast, label=""):
    """The three equivalence legs: RunMetrics, traps, final state."""
    ref_metrics = ref.collect_metrics().to_dict()
    fast_metrics = fast.collect_metrics().to_dict()
    diverged = {key: (ref_metrics[key], fast_metrics[key])
                for key in ref_metrics if ref_metrics[key] != fast_metrics[key]}
    assert not diverged, "%s RunMetrics diverged: %s" % (label, diverged)
    ref_state = final_translation_state(ref)
    fast_state = final_translation_state(fast)
    assert len(ref_state) > 0
    assert ref_state == fast_state, (
        "%s final translation state diverged: %s"
        % (label, ref_state.diff(fast_state)[:5]))
