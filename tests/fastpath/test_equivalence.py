"""System-level differential equivalence: fastpath vs reference core.

Every test runs the identical access stream through a reference
``System`` and a fastpath ``FastSystem`` and demands bit-identical
observable state: the full ``RunMetrics`` dict (ops, cycles, TLB/walk
counters, trap counts — everything), and the composed final translation
state of every live process (gVA -> hPA through the host table). The
streams mix reads, writes (dirty upgrades), policy epochs, TLB misses,
and L2 promotions, so every branch of the inline fast loop and every
fallback is crossed.
"""

import pytest

from repro.common.config import ALL_MODES
from repro.hw.fastwalker import WALK_FAULTS, BatchWalker
from repro.hw.walker import PageWalker

from .helpers import (
    assert_equivalent,
    build_pair,
    provision,
    run_batched,
    run_reference,
    seeded_stream,
)

PAGES = 96  # larger than L1 reach (64 entries), smaller than L2's


@pytest.mark.parametrize("mode", ALL_MODES)
def test_batch_matches_reference_per_op(mode):
    ref, fast = build_pair(mode)
    base = provision(ref, PAGES)
    assert provision(fast, PAGES) == base
    stream = seeded_stream(101, base, PAGES, 6000)
    run_reference(ref, stream)
    run_batched(fast, stream)
    assert_equivalent(ref, fast, mode)


@pytest.mark.parametrize("mode", ALL_MODES)
def test_per_op_access_on_fastpath_matches(mode):
    """The fastpath structures behind the plain ``access`` path (no
    batching at all) are already bit-identical to the reference."""
    ref, fast = build_pair(mode)
    base = provision(ref, PAGES)
    assert provision(fast, PAGES) == base
    stream = seeded_stream(202, base, PAGES, 3000)
    run_reference(ref, stream)
    run_reference(fast, stream)
    assert_equivalent(ref, fast, mode)


@pytest.mark.parametrize("mode", ALL_MODES)
def test_batch_equals_per_op_on_same_core(mode):
    """access_batch is observably the per-op loop: two fastpath systems,
    one batched and one looped, finish in identical states."""
    looped, batched = build_pair(mode)
    looped_fast = type(batched)(batched.config)  # a second fastpath system
    base = provision(looped_fast, PAGES)
    assert provision(batched, PAGES) == base
    stream = seeded_stream(303, base, PAGES, 4000)
    run_reference(looped_fast, stream)
    run_batched(batched, stream)
    assert_equivalent(looped_fast, batched, mode)


@pytest.mark.parametrize("mode", ALL_MODES)
def test_collect_frames_matches_reference_outcomes(mode):
    ref, fast = build_pair(mode)
    base = provision(ref, PAGES)
    assert provision(fast, PAGES) == base
    vas = [va for va, _ in seeded_stream(404, base, PAGES, 2500)]
    want = [ref.access(va).frame for va in vas]
    got = fast.access_batch(vas, collect_frames=True)
    assert want == got
    assert_equivalent(ref, fast, mode)


@pytest.mark.parametrize("mode", ("native", "agile"))
def test_inst_kind_falls_back_identically(mode):
    """Non-data access kinds take the reference path — and still match."""
    ref, fast = build_pair(mode)
    base = provision(ref, PAGES)
    assert provision(fast, PAGES) == base
    vas = [va for va, _ in seeded_stream(505, base, PAGES, 1200)]
    for va in vas:
        ref.access(va, kind="inst")
    fast.access_batch(vas, kind="inst")
    assert_equivalent(ref, fast, mode)


@pytest.mark.parametrize("mode", ALL_MODES)
def test_write_only_stream_matches(mode):
    """All-write streams exercise every dirty-upgrade fallback."""
    ref, fast = build_pair(mode)
    base = provision(ref, PAGES)
    assert provision(fast, PAGES) == base
    stream = [(va, True) for va, _ in seeded_stream(606, base, PAGES, 3000)]
    run_reference(ref, stream)
    run_batched(fast, stream)
    assert_equivalent(ref, fast, mode)


def _result_tuple(result):
    if isinstance(result, WALK_FAULTS):
        return ("fault", type(result).__name__)
    return (result.frame, result.page_shift, result.writable, result.dirty,
            result.refs, result.nested_levels, result.mode)


@pytest.mark.parametrize("mode", ALL_MODES)
def test_batch_walker_retirement_order(mode):
    """walk_many retires in submission order with the same per-walk
    results and PWC state evolution as a caller-side walk loop."""
    _ref, many = build_pair(mode)
    loop = type(many)(many.config)
    base = provision(loop, 16)
    assert provision(many, 16) == base
    # Populate both guests identically so walks find live leaves.
    vas = [base + 4096 * page for page in range(16)]
    loop.access_batch(vas)
    many.access_batch(vas)
    assert isinstance(many.mmu.walker, BatchWalker)

    requests = [vas[(7 * i) % 16] for i in range(64)]
    ctx_loop = loop._ctx_for(loop.kernel.current)
    ctx_many = many._ctx_for(many.kernel.current)
    got_loop = []
    for va in requests:
        try:
            got_loop.append(loop.mmu.walker.walk(va, ctx_loop))
        except WALK_FAULTS as fault:  # pragma: no cover - defensive
            got_loop.append(fault)
    got_many = many.mmu.walker.walk_many(
        (va, ctx_many, False) for va in requests)
    assert len(got_many) == len(requests)
    assert list(map(_result_tuple, got_loop)) \
        == list(map(_result_tuple, got_many))
    if loop.mmu.pwc is not None:
        assert (loop.mmu.pwc.stats.hits, loop.mmu.pwc.stats.fills) \
            == (many.mmu.pwc.stats.hits, many.mmu.pwc.stats.fills)


def test_batch_walker_captures_faults_per_slot():
    """A faulting walk becomes a result slot, not a batch abort."""
    _ref, fast = build_pair("native")
    base = provision(fast, 4)
    vas = [base + 4096 * page for page in range(4)]
    fast.access_batch(vas)
    ctx = fast._ctx_for(fast.kernel.current)
    unmapped = base + 4096 * 4096  # far outside the mapping
    results = fast.mmu.walker.walk_many(
        [(vas[0], ctx, False), (unmapped, ctx, False), (vas[1], ctx, False)])
    assert len(results) == 3
    assert not isinstance(results[0], WALK_FAULTS)
    assert isinstance(results[1], WALK_FAULTS)
    assert not isinstance(results[2], WALK_FAULTS)


@pytest.mark.parametrize("mode", ALL_MODES)
def test_tlb_contents_and_order_after_stream(mode):
    """Beyond the metrics: the TLB arrays themselves finish with the
    same entries in the same LRU order on both cores."""
    ref, fast = build_pair(mode)
    base = provision(ref, PAGES)
    assert provision(fast, PAGES) == base
    stream = seeded_stream(707, base, PAGES, 4000)
    run_reference(ref, stream)
    run_batched(fast, stream)

    def _contents(system):
        return [(e.asid, e.vpn, e.frame, e.page_shift, e.writable, e.dirty)
                for e in system.mmu.hierarchy.iter_entries()]

    assert _contents(ref) == _contents(fast)


def test_walk_dispatch_table_covers_reference_modes():
    """The dispatch table and the reference if-chain name the same
    handlers, so a new mode cannot silently fall through."""
    assert set(BatchWalker.DISPATCH) == {"native", "nested", "shadow", "agile"}
    for mode, handler in BatchWalker.DISPATCH.items():
        assert handler is getattr(PageWalker, "%s_walk" % mode)
