"""Mutation acceptance: the domain analysis is live on the fastpath code.

Same idiom as ``tests/lint/domains/test_mutations.py`` — copy the
installed package, plant one realistic address-space bug in the new
fastpath modules, and prove ``repro check`` (the deep rule set) catches
it. The clean-tree gate (``tests/lint/test_clean_tree.py``) already
proves the unmutated fastpath modules lint clean; these tests prove
that cleanliness is *earned*, not just the analysis looking away.
"""

import os
import shutil

import repro
from repro.lint import DEEP_RULES
from repro.lint.engine import LintEngine


def _package_dir():
    return os.path.dirname(os.path.abspath(repro.__file__))


def _mutate(tmp_path, relpath, needle, replacement):
    mutant = tmp_path / "repro"
    shutil.copytree(_package_dir(), mutant,
                    ignore=shutil.ignore_patterns("__pycache__"))
    target = mutant.joinpath(*relpath.split("/"))
    source = target.read_text()
    assert needle in source  # the code this mutation depends on
    target.write_text(source.replace(needle, replacement))
    findings, _checked = LintEngine(DEEP_RULES).run([str(mutant)])
    return findings


def test_swapping_gfn_for_vpn_in_snapshot_fails_check(tmp_path):
    """The acceptance mutation from the issue: index the final-state
    snapshot by the guest-*virtual* page number where the guest-frame
    number belongs, and the wrong-domain-argument rule must fire."""
    findings = _mutate(
        tmp_path, "core/fastpath.py",
        "state.add(key, _composed_host_frame(hostpt, gfn), meta)",
        "state.add(key, _composed_host_frame(hostpt, va >> 12), meta)")
    assert findings, "vpn passed as gfn went undetected"
    rule_ids = {f.rule_id for f in findings}
    assert "REPRO602" in rule_ids, "\n".join(f.format() for f in findings)
    swapped = [f for f in findings if f.rule_id == "REPRO602"]
    assert any("_composed_host_frame" in f.message for f in swapped)
    assert any("gfn" in f.message and "vpn" in f.message for f in swapped)


def test_valid_cores_dead_member_fails_check(tmp_path):
    """Declaring a core name nothing handles must trip REPRO502."""
    findings = _mutate(
        tmp_path, "common/config.py",
        "VALID_CORES = (CORE_REFERENCE, CORE_FASTPATH)",
        "VALID_CORES = (CORE_REFERENCE, CORE_FASTPATH, \"turbo\")")
    assert findings, "dead VALID_CORES member went undetected"
    assert {f.rule_id for f in findings} == {"REPRO502"}, \
        "\n".join(f.format() for f in findings)
    assert "VALID_CORES" in findings[0].message
    assert "'turbo'" in findings[0].message
