"""Structure-level parity: packed-array stores vs reference, op-for-op.

Each test drives the reference structure and its fastpath counterpart
with the identical seeded op stream and checks *after every op* that
returned entries, stats counters, and full LRU-ordered contents agree.
This is the strongest form of the equivalence claim: not just the same
hits, but the same eviction victim and the same replacement order at
every step.
"""

import random

import pytest

from repro.hw.fastpwc import FastPageWalkCache
from repro.hw.fasttlb import FastTLB, FastTLBHierarchy
from repro.hw.pwc import PWC_GUEST, PWC_NATIVE, PWC_SHADOW, PageWalkCache
from repro.hw.tlb import TLB, TLBEntry
from repro.hw.tlbhierarchy import TLBHierarchy

SEEDS = (0, 1, 7, 23)

PAGE_SHIFT = 12
ASIDS = (1, 2, 3)
VPNS = 40  # small VPN space: plenty of set conflicts and evictions


def _entry_tuple(entry):
    if entry is None:
        return None
    return (entry.asid, entry.vpn, entry.frame, entry.page_shift,
            entry.writable, entry.dirty)


def _stats_tuple(stats):
    return (stats.hits, stats.misses, stats.fills, stats.evictions,
            stats.invalidations)


def _tlb_state(tlb):
    """Full contents in iteration (= set, then LRU) order."""
    return [_entry_tuple(e) for e in tlb.iter_entries()]


def _random_entry(rng):
    return TLBEntry(asid=rng.choice(ASIDS), vpn=rng.randrange(VPNS),
                    frame=rng.randrange(1 << 20),
                    page_shift=PAGE_SHIFT, writable=rng.random() < 0.5,
                    dirty=rng.random() < 0.5)


def _step_tlb(rng, ref, fast):
    """One random op against both TLBs; asserts matching results."""
    roll = rng.random()
    asid = rng.choice(ASIDS)
    va = rng.randrange(VPNS) << PAGE_SHIFT
    if roll < 0.45:
        got_ref = ref.lookup(asid, va)
        got_fast = fast.lookup(asid, va)
        assert _entry_tuple(got_ref) == _entry_tuple(got_fast)
    elif roll < 0.80:
        entry = _random_entry(rng)
        ref.insert(TLBEntry(entry.asid, entry.vpn, entry.frame,
                            entry.page_shift, entry.writable, entry.dirty))
        fast.insert(entry)
    elif roll < 0.88:
        assert _entry_tuple(ref.peek(asid, va)) \
            == _entry_tuple(fast.peek(asid, va))
    elif roll < 0.94:
        ref.invalidate_page(asid, va)
        fast.invalidate_page(asid, va)
    elif roll < 0.98:
        ref.invalidate_asid(asid)
        fast.invalidate_asid(asid)
    else:
        ref.flush()
        fast.flush()


@pytest.mark.parametrize("seed", SEEDS)
def test_fasttlb_matches_reference_op_for_op(seed):
    """Same stats, same contents, same LRU order after every single op —
    which pins eviction victims and replacement decisions exactly."""
    rng = random.Random(seed)
    ref = TLB(entries=64, ways=4, page_shift=PAGE_SHIFT)
    fast = FastTLB(entries=64, ways=4, page_shift=PAGE_SHIFT)
    for _ in range(3000):
        _step_tlb(rng, ref, fast)
        assert _stats_tuple(ref.stats) == _stats_tuple(fast.stats)
        assert _tlb_state(ref) == _tlb_state(fast)
    assert ref.occupancy() == fast.occupancy()


@pytest.mark.parametrize("seed", SEEDS)
def test_fasttlb_eviction_order_matches(seed):
    """Pure insert streams into one set: the eviction *victim* (index 0
    / OrderedDict head) must coincide at every fill."""
    rng = random.Random(seed)
    ref = TLB(entries=8, ways=8, page_shift=PAGE_SHIFT)  # one set
    fast = FastTLB(entries=8, ways=8, page_shift=PAGE_SHIFT)
    for _ in range(500):
        entry = _random_entry(rng)
        ref.insert(TLBEntry(entry.asid, entry.vpn, entry.frame,
                            entry.page_shift, entry.writable, entry.dirty))
        fast.insert(entry)
        assert ref.stats.evictions == fast.stats.evictions
        assert _tlb_state(ref) == _tlb_state(fast)


def _pwc_state(pwc):
    """Full contents per skip depth, in LRU order."""
    if isinstance(pwc, FastPageWalkCache):
        return {depth: list(zip(pwc._tags[depth], pwc._payloads[depth]))
                for depth in range(1, pwc.MAX_SKIP + 1)}
    return {depth: list(pwc._tables[depth].items())
            for depth in range(1, pwc.MAX_SKIP + 1)}


@pytest.mark.parametrize("seed", SEEDS)
def test_fastpwc_matches_reference_op_for_op(seed):
    """Fill/invalidate/lookup parity for the page-walk caches, including
    the fill-then-invalidate interleavings the walker produces."""
    rng = random.Random(seed)
    ref = PageWalkCache(entries_per_table=8)
    fast = FastPageWalkCache(entries_per_table=8)
    modes = (PWC_NATIVE, PWC_SHADOW, PWC_GUEST)
    for _ in range(3000):
        roll = rng.random()
        asid = rng.choice(ASIDS)
        va = rng.randrange(1 << 20) << 21  # spread across radix indices
        if roll < 0.40:
            assert ref.lookup(asid, va) == fast.lookup(asid, va)
        elif roll < 0.80:
            depth = rng.randrange(1, 4)
            frame = rng.randrange(1 << 20)
            mode = rng.choice(modes)
            ref.insert(asid, va, depth, frame, mode)
            fast.insert(asid, va, depth, frame, mode)
        elif roll < 0.90:
            ref.invalidate_prefix(asid, va)
            fast.invalidate_prefix(asid, va)
        elif roll < 0.97:
            ref.invalidate_asid(asid)
            fast.invalidate_asid(asid)
        else:
            ref.flush()
            fast.flush()
        assert (ref.stats.hits, ref.stats.misses, ref.stats.fills) \
            == (fast.stats.hits, fast.stats.misses, fast.stats.fills)
        assert _pwc_state(ref) == _pwc_state(fast)


@pytest.mark.parametrize("seed", SEEDS)
def test_hierarchy_parity_including_l2_promotion(seed):
    """The L1+L2 hierarchy: L2-hit promotion into L1 must evict the same
    victim and leave the same orders in both structures."""
    from repro.common.config import sandy_bridge_config
    from repro.common.params import FOUR_KB

    config = sandy_bridge_config().tlbs
    rng = random.Random(seed)
    ref = TLBHierarchy(config, FOUR_KB)
    fast = FastTLBHierarchy(config, FOUR_KB)
    vpns = 600  # exceeds L2 capacity (512): real L2 evictions too
    for _ in range(4000):
        roll = rng.random()
        asid = rng.choice(ASIDS)
        va = rng.randrange(vpns) << PAGE_SHIFT
        if roll < 0.55:
            ref_entry, ref_level = ref.lookup(asid, va)
            fast_entry, fast_level = fast.lookup(asid, va)
            assert ref_level == fast_level
            assert _entry_tuple(ref_entry) == _entry_tuple(fast_entry)
        elif roll < 0.90:
            frame = rng.randrange(1 << 20)
            writable = rng.random() < 0.5
            dirty = writable and rng.random() < 0.5
            ref.fill(asid, va, frame, writable, dirty)
            fast.fill(asid, va, frame, writable, dirty)
        elif roll < 0.96:
            ref.invalidate_page(asid, va)
            fast.invalidate_page(asid, va)
        else:
            ref.invalidate_asid(asid)
            fast.invalidate_asid(asid)
        for ref_tlb, fast_tlb in ((ref.l1d, fast.l1d), (ref.l2, fast.l2)):
            assert _stats_tuple(ref_tlb.stats) == _stats_tuple(fast_tlb.stats)
            assert _tlb_state(ref_tlb) == _tlb_state(fast_tlb)
