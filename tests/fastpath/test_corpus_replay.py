"""Corpus replay on the fastpath core — the CI divergence tripwire.

Every committed reproducer case replays through the differential oracle
twice: once as recorded (reference core) and once with ``core="fastpath"``
merged over its oracle options (the ``repro fuzz --corpus ... --core
fastpath`` path). Fresh seeded campaigns then run reference and fastpath
machines in lockstep per mode, demanding equal fault counters, guest
leaf snapshots, trap counts, and ``RunMetrics``. A behavioural
divergence between the cores fails tier-1 here.
"""

import os

import pytest

from repro.common.config import CORE_FASTPATH
from repro.fuzz import ScenarioGenerator, ScenarioRunner, build_system
from repro.fuzz.corpus import iter_cases, replay_case

CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..",
    "corpus", "regression")

CASES = sorted(name for name in os.listdir(CORPUS_DIR)
               if name.endswith(".json"))


def _case(name):
    for path, case in iter_cases(CORPUS_DIR):
        if os.path.basename(path) == name:
            return case
    raise AssertionError("case %s vanished" % name)


@pytest.mark.parametrize("name", CASES)
def test_corpus_case_passes_on_fastpath_core(name):
    """The whole committed corpus, replayed on the fastpath core."""
    case = _case(name)
    verdict = replay_case(case, core=CORE_FASTPATH)
    assert verdict.ok, "%s diverged on fastpath core: %r" % (name, verdict)


@pytest.mark.parametrize("name", CASES)
def test_corpus_case_still_passes_on_reference_core(name):
    """Control leg: the recorded (reference-core) replay stays green, so
    a fastpath failure above can only mean a core divergence."""
    case = _case(name)
    verdict = replay_case(case)
    assert verdict.ok, "%s regressed on reference core: %r" % (name, verdict)


@pytest.mark.parametrize("seed,profile", [
    (11, "churn"),
    (12, "bimodal"),
    (13, "fork_cow"),
    (14, "ctx"),
    (15, "reclaim"),
])
def test_fresh_campaign_lockstep_equivalence(seed, profile):
    """Fresh seeded scenarios, reference vs fastpath in lockstep: the
    full oracle-visible state must agree after every scenario, per mode."""
    scenario = ScenarioGenerator(profile).generate(seed, 120)
    for mode in ("native", "nested", "shadow", "agile"):
        ref = ScenarioRunner(build_system(mode))
        fast = ScenarioRunner(build_system(mode, core=CORE_FASTPATH))
        ref.run(scenario)
        fast.run(scenario)
        label = "%s/%s/seed=%d" % (mode, profile, seed)
        assert ref.fault_counters() == fast.fault_counters(), label
        assert ref.leaf_snapshot() == fast.leaf_snapshot(), label
        assert ref.trap_counts() == fast.trap_counts(), label
        ref_metrics = ref.system.collect_metrics().to_dict()
        fast_metrics = fast.system.collect_metrics().to_dict()
        diverged = {key: (ref_metrics[key], fast_metrics[key])
                    for key in ref_metrics
                    if ref_metrics[key] != fast_metrics[key]}
        assert not diverged, "%s RunMetrics diverged: %s" % (label, diverged)
        ref.check_all()
        fast.check_all()
