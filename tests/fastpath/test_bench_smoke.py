"""Benchmark regression guard: the fastpath core must stay fast.

Runs the headline throughput benchmark in smoke configuration (small op
count, hot/L1 scenarios only) and fails if any mode's best speedup over
the reference core drops below the ``SPEEDUP_GATE`` (3x). The 10x
aspiration is reported in ``BENCH_core_throughput.json`` but not gated —
interpreter speed varies too much across hosts to make it a CI contract.

The benchmark itself asserts bit-identical ``RunMetrics`` between the
timed cores, so this smoke run doubles as one more equivalence pass.
"""

import importlib.util
import os

import pytest

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..",
    "benchmarks", "bench_core_throughput.py")


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_core_throughput", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.bench
def test_fastpath_speedup_stays_above_gate():
    bench = _load_bench()
    report = bench.run_core_throughput(
        ops=30_000, repeat=1, scenarios=bench.SMOKE_SCENARIOS)
    assert report["gate_speedup"] == bench.SPEEDUP_GATE == 3.0
    slow = {mode: data["best_speedup"]
            for mode, data in report["modes"].items()
            if data["best_speedup"] < bench.SPEEDUP_GATE}
    assert not slow, (
        "fastpath core slipped below the %.1fx gate: %s (full report: %s)"
        % (bench.SPEEDUP_GATE, slow, report["summary"]))


@pytest.mark.bench
def test_committed_benchmark_report_is_fresh_and_passing():
    """The committed BENCH_core_throughput.json must itself clear the
    gate — a stale or failing report in the tree is a lie."""
    import json

    bench = _load_bench()
    path = os.path.join(os.path.dirname(BENCH_PATH), "..",
                        "BENCH_core_throughput.json")
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    # Schema-2 harness envelope: provenance + gates around the result.
    assert report["schema"] == 2
    assert report["benchmark"] == "core_throughput"
    assert report["quick"] is False
    for key in ("host", "python", "git_sha", "generated_at"):
        assert key in report["provenance"]
    gated = {gate["metric"] for gate in report["gates"]}
    assert "summary.geomean_speedup" in gated

    result = report["result"]
    assert set(result["modes"]) == {"native", "nested", "shadow", "agile"}
    for mode, data in result["modes"].items():
        assert data["best_speedup"] >= result["gate_speedup"], mode
        for cell in data["scenarios"]:
            # Every cell attributes why it left the inline loop — the
            # per-reason fallback counts the report exists to explain.
            assert "inline" in cell["fallbacks"], (mode, cell["scenario"])
    assert result["summary"]["min_best_speedup"] >= result["gate_speedup"]
    assert result["gate_speedup"] == bench.SPEEDUP_GATE
