"""Unit tests for the address-space geometry helpers."""

import pytest

from repro.common import params
from repro.common.params import (
    FOUR_KB,
    ONE_GB,
    TWO_MB,
    align_up,
    is_canonical,
    level_shift,
    level_span,
    page_base,
    page_number,
    page_offset,
    pt_index,
    walk_levels,
)


class TestGeometryConstants:
    def test_va_width_is_48_bits(self):
        assert params.VA_BITS == 48
        assert params.VA_LIMIT == 1 << 48

    def test_four_levels_of_nine_bits(self):
        assert params.NUM_LEVELS == 4
        assert params.ENTRIES_PER_NODE == 512

    def test_page_sizes(self):
        assert FOUR_KB.bytes == 4096
        assert TWO_MB.bytes == 2 * 1024 * 1024
        assert ONE_GB.bytes == 1024 ** 3

    def test_leaf_levels_match_x86(self):
        assert FOUR_KB.leaf_level == 1
        assert TWO_MB.leaf_level == 2
        assert ONE_GB.leaf_level == 3


class TestLevelShift:
    def test_known_shifts(self):
        assert level_shift(1) == 12
        assert level_shift(2) == 21
        assert level_shift(3) == 30
        assert level_shift(4) == 39

    @pytest.mark.parametrize("level", [0, 5, -1])
    def test_rejects_bad_level(self, level):
        with pytest.raises(ValueError):
            level_shift(level)


class TestPtIndex:
    def test_extracts_each_field(self):
        va = (5 << 39) | (17 << 30) | (111 << 21) | (511 << 12) | 0x123
        assert pt_index(va, 4) == 5
        assert pt_index(va, 3) == 17
        assert pt_index(va, 2) == 111
        assert pt_index(va, 1) == 511

    def test_index_is_nine_bits(self):
        va = (1 << 48) - 1
        for level in range(1, 5):
            assert pt_index(va, level) == 511

    def test_zero_va(self):
        for level in range(1, 5):
            assert pt_index(0, level) == 0


class TestPageHelpers:
    def test_page_number_and_offset_partition_va(self):
        va = 0x1234_5678
        assert (page_number(va) << 12) | page_offset(va) == va

    def test_page_base(self):
        assert page_base(0x1234) == 0x1000
        assert page_base(0x1234, 21) == 0

    def test_offsets_at_2m(self):
        va = TWO_MB.bytes + 12345
        assert page_number(va, 21) == 1
        assert page_offset(va, 21) == 12345

    def test_align_up(self):
        assert align_up(1, 4096) == 4096
        assert align_up(4096, 4096) == 4096
        assert align_up(0, 4096) == 0

    def test_canonical(self):
        assert is_canonical(0)
        assert is_canonical((1 << 48) - 1)
        assert not is_canonical(1 << 48)
        assert not is_canonical(-1)

    def test_level_span(self):
        assert level_span(1) == 4096
        assert level_span(2) == TWO_MB.bytes
        assert level_span(3) == ONE_GB.bytes

    def test_walk_levels_order(self):
        assert list(walk_levels()) == [4, 3, 2, 1]
        assert list(walk_levels(2)) == [4, 3, 2]
