"""Unit tests for the fault taxonomy and the virtual clock."""

import pytest

from repro.common.clock import Clock
from repro.common.errors import (
    GuestPageFault,
    HostPageFault,
    ShadowNotPresentFault,
    ShadowProtectionFault,
    SimulationError,
    TranslationFault,
    VMExit,
)


class TestFaultHierarchy:
    def test_guest_fault_is_not_a_vmexit(self):
        fault = GuestPageFault(0x1000)
        assert isinstance(fault, TranslationFault)
        assert not isinstance(fault, VMExit)

    @pytest.mark.parametrize("cls,kwargs", [
        (HostPageFault, {"gpa": 0x2000}),
        (ShadowNotPresentFault, {}),
        (ShadowProtectionFault, {}),
    ])
    def test_vmm_faults_are_vmexits(self, cls, kwargs):
        fault = cls(0x1000, **kwargs)
        assert isinstance(fault, VMExit)

    def test_fault_carries_refs_and_level(self):
        fault = GuestPageFault(0x1000, refs=3, level=2, is_write=True)
        assert fault.refs == 3
        assert fault.level == 2
        assert fault.is_write

    def test_host_fault_carries_gpa(self):
        fault = HostPageFault(0x1000, gpa=0x5000, is_write=True)
        assert fault.gpa == 0x5000
        assert fault.is_write

    def test_protection_flag(self):
        assert GuestPageFault(0, protection=True).protection
        assert not GuestPageFault(0).protection

    def test_message_mentions_va(self):
        assert "0x1234" in str(GuestPageFault(0x1234))

    def test_simulation_error_is_not_a_fault(self):
        assert not isinstance(SimulationError("x"), TranslationFault)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_advances(self):
        clock = Clock()
        clock.advance(5)
        clock.advance(7)
        assert clock.now == 12

    def test_zero_advance_ok(self):
        clock = Clock()
        clock.advance(0)
        assert clock.now == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)
