"""Unit tests for the fault taxonomy and the virtual clock."""

import pytest

from repro.common.clock import Clock, VirtualClock
from repro.common.errors import (
    GuestPageFault,
    HostPageFault,
    ShadowNotPresentFault,
    ShadowProtectionFault,
    SimulationError,
    TranslationFault,
    VMExit,
)


class TestFaultHierarchy:
    def test_guest_fault_is_not_a_vmexit(self):
        fault = GuestPageFault(0x1000)
        assert isinstance(fault, TranslationFault)
        assert not isinstance(fault, VMExit)

    @pytest.mark.parametrize("cls,kwargs", [
        (HostPageFault, {"gpa": 0x2000}),
        (ShadowNotPresentFault, {}),
        (ShadowProtectionFault, {}),
    ])
    def test_vmm_faults_are_vmexits(self, cls, kwargs):
        fault = cls(0x1000, **kwargs)
        assert isinstance(fault, VMExit)

    def test_fault_carries_refs_and_level(self):
        fault = GuestPageFault(0x1000, refs=3, level=2, is_write=True)
        assert fault.refs == 3
        assert fault.level == 2
        assert fault.is_write

    def test_host_fault_carries_gpa(self):
        fault = HostPageFault(0x1000, gpa=0x5000, is_write=True)
        assert fault.gpa == 0x5000
        assert fault.is_write

    def test_protection_flag(self):
        assert GuestPageFault(0, protection=True).protection
        assert not GuestPageFault(0).protection

    def test_message_mentions_va(self):
        assert "0x1234" in str(GuestPageFault(0x1234))

    def test_simulation_error_is_not_a_fault(self):
        assert not isinstance(SimulationError("x"), TranslationFault)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_advances(self):
        clock = Clock()
        clock.advance(5)
        clock.advance(7)
        assert clock.now == 12

    def test_zero_advance_ok(self):
        clock = Clock()
        clock.advance(0)
        assert clock.now == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)


class TestVirtualClock:
    """The two-time-base contract the REPRO70x rules typecheck."""

    def test_pass_through_accounting_identity(self):
        """host wall time == the sum of every view's virtual time, no
        matter how tenant advances interleave."""
        host = Clock()
        vms = [VirtualClock(host) for _ in range(3)]
        # A deterministic interleaving: tenant (i % 3) advances by
        # varying amounts, round-robin like the scheduler.
        for i in range(30):
            vms[i % 3].advance(7 * (i % 5) + 1)
        assert host.now == sum(vm.now for vm in vms)
        assert host.now > 0

    def test_virtual_now_excludes_other_tenants(self):
        host = Clock()
        a, b = VirtualClock(host), VirtualClock(host)
        a.advance(100)
        b.advance(40)
        assert a.now == 100
        assert b.now == 40
        assert host.now == 140

    def test_rejects_negative_before_touching_host(self):
        host = Clock()
        vm = VirtualClock(host)
        vm.advance(5)
        with pytest.raises(ValueError):
            vm.advance(-1)
        assert vm.now == 5
        assert host.now == 5

    def test_world_switch_charged_to_host_wall_only(self):
        """The scheduler's world-switch bill lands on the host clock
        between quanta — never on any tenant's virtual view — so
        host.now == sum(vm.now) + world_switch_cycles."""
        from repro.common.config import HostConfig
        from repro.host.scheduler import VCpuScheduler

        class _StubMMU:
            def flush_all(self):
                pass

        class _StubSystem:
            vmm = None

            def __init__(self):
                self.mmu = _StubMMU()

        host = Clock()
        config = HostConfig(vms=2, world_switch_cycles=4_000)
        scheduler = VCpuScheduler(config, host)

        class _StubVM:
            weight = 1.0

            def __init__(self, vm_id, clock):
                self.vm_id = vm_id
                self.system = _StubSystem()
                self.system.clock = clock
                self.world_switches = 0
                self.world_switch_cycles = 0

        vms = [_StubVM(i, VirtualClock(host)) for i in range(2)]
        scheduler.world_switch(vms[0])  # first dispatch: free
        vms[0].system.clock.advance(1_000)
        scheduler.world_switch(vms[1])  # real switch: host pays
        vms[1].system.clock.advance(2_000)
        assert scheduler.world_switch_cycles == 4_000
        assert all(vm.system.clock.now in (1_000, 2_000) for vm in vms)
        assert host.now == (sum(vm.system.clock.now for vm in vms)
                            + scheduler.world_switch_cycles)
