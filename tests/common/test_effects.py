"""The effect-annotation decorators are runtime no-ops with metadata."""

import pytest

from repro.common.effects import (
    RESOURCES,
    mutates,
    policy_decision,
    trap_handler,
)


class TestMutates:
    def test_records_the_resource_and_returns_the_function(self):
        @mutates("shadow_pt")
        def fill():
            return 41

        assert fill.__repro_mutates__ == ("shadow_pt",)
        assert fill() == 41

    def test_stacks_into_a_tuple(self):
        @mutates("shadow_pt")
        @mutates("switching_bits")
        def switch():
            pass

        assert set(switch.__repro_mutates__) == {"shadow_pt", "switching_bits"}
        assert set(switch.__repro_mutates__) <= set(RESOURCES)

    def test_unknown_resource_is_rejected(self):
        with pytest.raises(ValueError):
            @mutates("tlb")
            def bad():
                pass


class TestMarkers:
    def test_trap_handler_marks_and_passes_through(self):
        @trap_handler
        def handle(x):
            return x + 1

        assert handle.__repro_trap_handler__ is True
        assert handle(1) == 2

    def test_policy_decision_marks_and_passes_through(self):
        @policy_decision
        def decide():
            return "shadow"

        assert decide.__repro_policy_decision__ is True
        assert decide() == "shadow"
