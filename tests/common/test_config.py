"""Unit tests for machine configuration objects."""

import pytest

from repro.common.config import (
    MODE_AGILE,
    MODE_NATIVE,
    MODE_NESTED,
    MODE_SHADOW,
    MachineConfig,
    TLBConfig,
    sandy_bridge_config,
    sandy_bridge_tlbs,
)
from repro.common.params import FOUR_KB, TWO_MB


class TestTLBConfig:
    def test_sets_derived(self):
        assert TLBConfig(entries=64, ways=4).sets == 16

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=10, ways=4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0, ways=1)


class TestSandyBridgeTable3:
    """The Table III geometry, verbatim."""

    def test_l1_dtlb(self):
        tlbs = sandy_bridge_tlbs()
        assert tlbs.l1d["4K"] == TLBConfig(64, 4)
        assert tlbs.l1d["2M"] == TLBConfig(32, 4)
        assert tlbs.l1d["1G"] == TLBConfig(4, 4)

    def test_l1_itlb(self):
        tlbs = sandy_bridge_tlbs()
        assert tlbs.l1i["4K"] == TLBConfig(128, 4)
        assert tlbs.l1i["2M"] == TLBConfig(8, 8)

    def test_l2_tlb(self):
        tlbs = sandy_bridge_tlbs()
        assert tlbs.l2["4K"] == TLBConfig(512, 4)
        assert tlbs.l2["2M"] == TLBConfig(512, 4)
        assert "1G" not in tlbs.l2


class TestMachineConfig:
    def test_default_is_native_4k(self):
        config = MachineConfig()
        assert config.mode == MODE_NATIVE
        assert config.page_size is FOUR_KB
        assert not config.virtualized

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            MachineConfig(mode="paravirt")

    def test_rejects_non_pagesize(self):
        with pytest.raises(TypeError):
            MachineConfig(page_size=4096)

    @pytest.mark.parametrize("mode", [MODE_NESTED, MODE_SHADOW, MODE_AGILE])
    def test_virtualized_modes(self, mode):
        assert MachineConfig(mode=mode).virtualized

    def test_with_mode_returns_copy(self):
        base = sandy_bridge_config()
        nested = base.with_mode(MODE_NESTED)
        assert nested.mode == MODE_NESTED
        assert base.mode == MODE_NATIVE
        assert nested.tlbs == base.tlbs

    def test_with_page_size(self):
        config = sandy_bridge_config().with_page_size(TWO_MB)
        assert config.page_size is TWO_MB

    def test_overrides(self):
        config = sandy_bridge_config(hw_ad_assist=False, nested_tlb_entries=16)
        assert not config.hw_ad_assist
        assert config.nested_tlb_entries == 16
