"""Tests for the experiment runners (Tables I/II/VI, Figures 3/5)."""

import pytest

from repro.analysis import experiments
from repro.analysis.tables import (
    figure5_rows,
    format_table,
    table1_rows,
    table2_rows,
    table6_rows,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def measurements(self):
        return experiments.table1_measurements()

    def test_max_refs_match_paper(self, measurements):
        assert measurements["native"]["max_refs"] == 4
        assert measurements["nested"]["max_refs"] == 24
        assert measurements["shadow"]["max_refs"] == 4
        assert measurements["agile"]["max_refs"] == 24  # worst case

    def test_update_path(self, measurements):
        assert measurements["native"]["pt_update_traps"] == 0
        assert measurements["nested"]["pt_update_traps"] == 0
        assert measurements["shadow"]["pt_update_traps"] >= 1
        # Agile steady state: the dynamic parts update directly.
        assert measurements["agile"]["pt_update_traps"] == 0

    def test_rows_render(self, measurements):
        rows = table1_rows(measurements)
        assert len(rows) == 4
        text = format_table(
            ("Technique", "TLB hit", "Max refs", "PT updates", "HW support"),
            rows,
        )
        assert "Agile Paging" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def totals(self):
        return experiments.table2_measurements()

    def test_degree_arithmetic(self, totals):
        """The paper's Table II: 4, 8, 12, 16, 20, 24 references."""
        assert totals[0] == 4
        assert totals[1] == 8
        assert totals[2] == 12
        assert totals[3] == 16
        assert totals[4] == 20
        assert totals["nested"] == 24

    def test_rows_render(self, totals):
        rows = table2_rows(totals)
        assert rows[-1][0] == "All"
        assert rows[-1][2] == 24
        assert rows[-1][4] == "4-24"


class TestFigure3:
    def test_journal_shapes(self):
        journals = experiments.figure3_journals()
        lengths = {label: len(j) for label, j in journals.items()}
        assert lengths == {
            "shadow-only": 4,
            "switch@4th": 8,
            "switch@3rd": 12,
            "switch@2nd": 16,
            "switch@1st": 20,
            "nested-only": 24,
        }

    def test_shadow_prefix_order(self):
        journals = experiments.figure3_journals()
        assert journals["switch@3rd"][:2] == [("sPT", 4), ("sPT", 3)]
        assert journals["switch@3rd"][2][0] == "gPT"


class TestFigure5AndHeadline:
    @pytest.fixture(scope="class")
    def results(self):
        # Two contrasting workloads keep the test fast.
        return experiments.figure5(ops=12_000,
                                   workload_names={"mcf", "dedup"})

    def test_grid_complete(self, results):
        assert set(results) == {"mcf", "dedup"}
        for configs in results.values():
            assert len(configs) == 8  # 2 page sizes x 4 modes

    def test_ordering_claims(self, results):
        """Agile beats or ties the best constituent (4K pages)."""
        for name, configs in results.items():
            def total(mode):
                m = configs[("4K", mode)]
                return m.page_walk_overhead + m.vmm_overhead

            best = min(total("nested"), total("shadow"))
            assert total("agile") <= best * 1.05, name

    def test_2m_reduces_overheads(self, results):
        for name, configs in results.items():
            four_k = configs[("4K", "agile")]
            two_m = configs[("2M", "agile")]
            assert (two_m.page_walk_overhead
                    <= four_k.page_walk_overhead + 0.01), name

    def test_headline_summary(self, results):
        rows, summary = experiments.headline_claims(results)
        assert len(rows) == 2
        assert summary["geomean_speedup_vs_best"] >= 1.0
        assert summary["geomean_slowdown_vs_native"] < 1.5

    def test_figure5_rows_render(self, results):
        rows = figure5_rows(results)
        assert len(rows) == 16


class TestTable6:
    @pytest.fixture(scope="class")
    def results(self):
        return experiments.table6(ops=12_000, workload_names={"canneal", "dedup"})

    def test_shadow_mode_dominates(self, results):
        """Most TLB misses are served in full shadow mode (Section VII-B)."""
        for name, metrics in results.items():
            mix = metrics.mode_mix()
            assert mix.get("Shadow", 0.0) > 0.5, (name, mix)

    def test_avg_refs_under_nested_worst_case(self, results):
        for name, metrics in results.items():
            assert 4.0 <= metrics.avg_refs_per_miss < 24.0, name

    def test_rows_render(self, results):
        rows = table6_rows(results)
        assert len(rows) == 2
        assert all(len(row) == 8 for row in rows)
