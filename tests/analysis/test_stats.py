"""Tests for the multi-seed statistics helpers."""

import pytest

from repro.analysis.stats import (
    ModeStats,
    Summary,
    compare_modes,
    ordering_confidence,
    run_many,
)
from repro.common.config import sandy_bridge_config
from repro.workloads.suite import AstarLike


class TestSummary:
    def test_mean(self):
        assert Summary([1.0, 2.0, 3.0]).mean == 2.0

    def test_stdev(self):
        assert Summary([1.0, 3.0]).stdev == pytest.approx(1.4142, rel=1e-3)

    def test_single_value_stdev_zero(self):
        assert Summary([5.0]).stdev == 0.0

    def test_min_max(self):
        summary = Summary([3.0, 1.0, 2.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary([])


def astar_factory(seed):
    return AstarLike(ops=6_000, seed=seed)


class TestRunMany:
    @pytest.fixture(scope="class")
    def stats(self):
        return run_many(astar_factory, sandy_bridge_config(mode="shadow"),
                        seeds=(1, 2, 3))

    def test_one_run_per_seed(self, stats):
        assert len(stats.runs) == 3

    def test_seeds_change_streams(self, stats):
        misses = {m.tlb_misses for m in stats.runs}
        assert len(misses) > 1

    def test_aggregates_present(self, stats):
        assert stats.total.mean > 0
        assert stats.page_walk.mean > 0
        assert stats.misses_per_kop.mean > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModeStats([])


class TestCompareModes:
    def test_agile_ordering_holds_across_seeds(self):
        configs = {
            "nested": sandy_bridge_config(mode="nested"),
            "agile": sandy_bridge_config(mode="agile"),
        }
        results = compare_modes(astar_factory, configs, seeds=(1, 2, 3))
        confidence = ordering_confidence(results["agile"], results["nested"])
        assert confidence == 1.0
