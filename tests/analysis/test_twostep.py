"""Tests for the two-step methodology (Section VI)."""

import pytest

from repro.analysis import twostep
from repro.analysis.model import compare_projection_to_direct
from repro.common.config import sandy_bridge_config
from repro.core.simulator import run_workload
from repro.workloads.suite import DedupLike, McfLike


def dedup_factory():
    # Enough ops to include several dedup chunk cycles (period 35k).
    return DedupLike(ops=40_000)


def mcf_factory():
    return McfLike(ops=10_000)


class TestStep1:
    @pytest.fixture(scope="class")
    def trace(self):
        return twostep.run_step1(dedup_factory())

    def test_records_pt_writes(self, trace):
        assert trace.total_pt_writes > 0

    def test_finds_dynamic_nodes(self, trace):
        # Dedup's chunk regions change constantly: some nodes go nested.
        assert trace.nested_nodes

    def test_fv_fractions_bounded(self, trace):
        for value in trace.fv.values():
            assert 0.0 <= value <= 1.0

    def test_hardware_opts_eliminate_cs_and_dirty(self, trace):
        assert trace.fv["context_switch"] == 1.0
        assert trace.fv["dirty_sync"] == 1.0

    def test_quiet_workload_has_no_nested_nodes(self):
        from repro.workloads.suite import CannealLike

        trace = twostep.run_step1(CannealLike(ops=8_000))
        # Steady-state canneal never updates its page tables.
        assert trace.eliminated_pt_writes == 0


class TestStep2:
    def test_classifies_misses(self):
        trace = twostep.run_step1(dedup_factory())
        fractions, nested_metrics = twostep.run_step2(dedup_factory(), trace)
        assert nested_metrics.tlb_misses > 0
        total_fn = sum(fractions.fn.values())
        assert 0.0 <= total_fn <= 1.0
        assert fractions.shadow_fraction == pytest.approx(1.0 - total_fn)

    def test_mostly_shadow_for_mcf(self):
        trace = twostep.run_step1(mcf_factory())
        fractions, _metrics = twostep.run_step2(mcf_factory(), trace)
        assert fractions.shadow_fraction > 0.8


class TestProjection:
    @pytest.fixture(scope="class")
    def projection(self):
        return twostep.two_step_projection(dedup_factory)

    def test_projection_fields(self, projection):
        assert projection["projected_pw_overhead"] >= 0.0
        assert projection["projected_vmm_overhead"] >= 0.0

    def test_projection_tracks_direct_simulation(self, projection):
        """The Table IV model and the direct simulator must agree on the
        big picture: agile lands near shadow walk cost with far less
        VMM time than shadow paging."""
        direct = run_workload(dedup_factory(), sandy_bridge_config(mode="agile"))
        comparison = compare_projection_to_direct(projection, direct)
        projected_total, direct_total = comparison["total_overhead"]
        shadow_total = (projection["shadow"].page_walk_overhead
                        + projection["shadow"].vmm_overhead)
        assert projected_total < shadow_total
        assert direct_total < shadow_total

    def test_projected_vmm_below_shadow(self, projection):
        shadow_vmm = projection["shadow"].vmm_overhead
        assert projection["projected_vmm_overhead"] < shadow_vmm
