"""Tests for the ASCII figure rendering."""

from repro.analysis.plots import render_figure5, render_mode_mix
from repro.common.params import FOUR_KB
from repro.core.metrics import RunMetrics
from repro.hw.walkstats import NESTED_FULL


def fake_metrics(pw, vmm, mix=None):
    metrics = RunMetrics("x", "agile", FOUR_KB)
    metrics.ideal_cycles = 1000
    metrics.walk_cycles = int(pw * 1000)
    metrics.vmm_cycles = int(vmm * 1000)
    metrics.tlb_misses = 10
    metrics.walk_refs = 42
    metrics.walks_by_depth = mix or {}
    return metrics


class TestFigure5Rendering:
    def make_results(self):
        return {
            "mcf": {
                ("4K", "native"): fake_metrics(0.5, 0.0),
                ("4K", "nested"): fake_metrics(1.0, 0.0),
                ("4K", "shadow"): fake_metrics(0.5, 0.2),
                ("4K", "agile"): fake_metrics(0.5, 0.05),
                ("2M", "native"): fake_metrics(0.01, 0.0),
            },
        }

    def test_contains_workload_and_modes(self):
        text = render_figure5(self.make_results())
        assert "mcf" in text
        for label in ("B |", "N |", "S |", "A |"):
            assert label in text

    def test_bars_scale_with_overhead(self):
        text = render_figure5(self.make_results())
        lines = [l for l in text.splitlines() if "|" in l]
        nested_line = [l for l in lines if l.strip().startswith("N")][0]
        native_line = [l for l in lines if l.strip().startswith("B")][0]
        assert nested_line.count("#") > native_line.count("#")

    def test_vmm_segment_rendered(self):
        text = render_figure5(self.make_results())
        shadow_line = [l for l in text.splitlines()
                       if l.strip().startswith("S |")][0]
        assert "%" in shadow_line

    def test_other_page_size_slice(self):
        text = render_figure5(self.make_results(), page_size_name="2M")
        assert "2M pages" in text

    def test_empty_slice(self):
        assert "no data" in render_figure5({}, page_size_name="1G")


class TestModeMixRendering:
    def test_segments(self):
        metrics = fake_metrics(0, 0, mix={0: 80, 1: 15, 2: 5, 3: 0, 4: 0,
                                          NESTED_FULL: 0})
        text = render_mode_mix({"memcached": metrics})
        assert "memcached" in text
        bar_line = text.splitlines()[1]
        assert bar_line.count(".") > bar_line.count("4") > 0
