"""Golden-snapshot tests: paper-number summaries pinned to checked-in JSON.

The reproduced Table I, Table VI, and Figure 5 summaries are compared
against goldens under ``tests/goldens/``. Any change to simulator
behaviour — intended or not — shifts these numbers and fails here,
so paper-number drift is an explicit CI event instead of a silent one.

To regenerate after an *intentional* change (then eyeball the diff)::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/analysis/test_goldens.py -q

Goldens depend on the NumPy ``default_rng`` bit stream in addition to
simulator code; regenerating after a NumPy upgrade that changes streams
is expected and the diff documents the shift.
"""

import json
import os

import pytest

from repro.analysis import experiments
from repro.common.params import FOUR_KB

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "goldens")
REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"
REGEN_COMMAND = ("REPRO_REGEN_GOLDENS=1 PYTHONPATH=src "
                 "python -m pytest tests/analysis/test_goldens.py -q")
GOLDEN_OPS = 5_000


def check_golden(name, data):
    """Compare ``data`` against the named golden (or rewrite it)."""
    path = os.path.join(GOLDEN_DIR, name + ".json")
    if REGEN:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"_regenerate": REGEN_COMMAND, "data": data}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        pytest.skip("golden %s regenerated" % name)
    with open(path, encoding="utf-8") as handle:
        golden = json.load(handle)["data"]
    assert data == golden, (
        "reproduced %s summary drifted from tests/goldens/%s.json — if the "
        "change is intended, regenerate with:\n  %s" % (name, name,
                                                        REGEN_COMMAND))


def test_table1_golden():
    measurements = experiments.table1_measurements()
    check_golden("table1", {mode: dict(values)
                            for mode, values in measurements.items()})


def test_table6_golden():
    results = experiments.table6(ops=GOLDEN_OPS, workload_names={"canneal"})
    data = {}
    for name, metrics in results.items():
        data[name] = {
            "summary": metrics.summary(),
            "mode_mix": {key: round(value, 6)
                         for key, value in metrics.mode_mix().items()},
        }
    check_golden("table6", data)


def test_figure5_golden():
    results = experiments.figure5(ops=GOLDEN_OPS, workload_names={"mcf"},
                                  page_sizes=(FOUR_KB,))
    data = {
        name: {"%s:%s" % key: metrics.summary()
               for key, metrics in configs.items()}
        for name, configs in results.items()
    }
    _rows, headline = experiments.headline_claims(results)
    data["_headline"] = {key: round(value, 6)
                         for key, value in headline.items()}
    check_golden("figure5", data)
