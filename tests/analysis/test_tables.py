"""Unit tests for the table formatters."""

from repro.analysis.tables import (
    figure5_rows,
    format_table,
    table1_rows,
    table2_rows,
    table6_rows,
)
from repro.common.params import FOUR_KB
from repro.core.metrics import RunMetrics
from repro.hw.walkstats import NESTED_FULL


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "bbb"), [("xxxx", 1), ("y", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("a   ")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        text = format_table(("a",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(("col",), [])
        assert "col" in text


class TestTable1Rows:
    def test_shapes_and_labels(self):
        measurements = {
            mode: {"max_refs": refs, "pt_update_traps": traps}
            for mode, refs, traps in (
                ("native", 4, 0), ("nested", 24, 0),
                ("shadow", 4, 2), ("agile", 24, 0),
            )
        }
        rows = table1_rows(measurements)
        by_name = {row[0]: row for row in rows}
        assert by_name["Shadow Paging"][3] == "slow mediated by VMM"
        assert by_name["Nested Paging"][3] == "fast direct"
        assert by_name["Base Native"][1] == "fast (VA=>PA)"
        assert "switching" in by_name["Agile Paging"][4]


class TestTable2Rows:
    def test_per_level_arithmetic(self):
        rows = table2_rows({0: 4, "nested": 24})
        by_level = {row[0]: row for row in rows}
        assert by_level["PTptr"][1:] == (0, 4, 0, "0 or 4")
        assert by_level["L4"][1:] == (1, 5, 1, "1 or 5")
        assert by_level["All"][1:] == (4, 24, 4, "4-24")


def metrics_with(mix, refs):
    metrics = RunMetrics("wl", "agile", FOUR_KB)
    metrics.walks_by_depth = mix
    metrics.tlb_misses = sum(mix.values())
    metrics.walk_refs = int(refs * metrics.tlb_misses)
    return metrics


class TestTable6Rows:
    def test_percent_formatting(self):
        metrics = metrics_with({0: 90, 1: 10, 2: 0, 3: 0, 4: 0,
                                NESTED_FULL: 0}, refs=4.4)
        [(name, shadow, l4, *_rest, avg)] = table6_rows({"wl": metrics})
        assert name == "wl"
        assert shadow == "90.0%"
        assert l4 == "10.0%"
        assert avg == "4.40"


class TestFigure5Rows:
    def test_one_row_per_config(self):
        metrics = RunMetrics("mcf", "native", FOUR_KB)
        metrics.ideal_cycles = 100
        metrics.walk_cycles = 50
        rows = figure5_rows({"mcf": {("4K", "native"): metrics}})
        assert rows == [("mcf", "4K:B", "50.0%", "0.0%", "50.0%")]
