import os
import sys

# Make the shared helpers importable from every test package.
sys.path.insert(0, os.path.dirname(__file__))
