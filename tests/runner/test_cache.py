"""Cache correctness: hits, misses, fingerprint churn, corruption recovery."""

import json
import os

from repro.runner import (
    STATUS_CACHED,
    STATUS_OK,
    CellSpec,
    ResultCache,
    SweepRunner,
    execute_cell,
)

TINY = "repro.runner.testing:TinyWorkload"


def tiny_cell(**kw):
    defaults = dict(mode="shadow", ops=200, seed=5)
    defaults.update(kw)
    return CellSpec.make("tiny", factory=TINY, **defaults)


class TestCacheRoundTrip:
    def test_put_get_reproduces_metrics_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_cell()
        metrics = execute_cell(spec)
        cache.put(spec, metrics)
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.to_dict() == metrics.to_dict()
        assert cache.stats()["hits"] == 1

    def test_identical_rerun_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = SweepRunner(cache=cache).run([tiny_cell()])
        assert [r.status for r in first] == [STATUS_OK]
        second = SweepRunner(cache=cache).run([tiny_cell()])
        assert [r.status for r in second] == [STATUS_CACHED]
        assert (next(iter(second)).metrics.to_dict()
                == next(iter(first)).metrics.to_dict())

    def test_config_override_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run([tiny_cell()])
        changed = tiny_cell(overrides={"pwc.enabled": False})
        result = SweepRunner(cache=cache).run([changed])
        assert [r.status for r in result] == [STATUS_OK]

    def test_seed_and_ops_changes_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache).run([tiny_cell()])
        assert cache.get(tiny_cell(seed=6)) is None
        assert cache.get(tiny_cell(ops=201)) is None

    def test_source_fingerprint_change_misses(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="a" * 64)
        spec = tiny_cell()
        old.put(spec, execute_cell(spec))
        assert old.get(spec) is not None
        new = ResultCache(tmp_path, fingerprint="b" * 64)
        assert new.get(spec) is None
        # The stale generation is still on disk until pruned.
        assert new.prune() == 1
        assert old.get(spec) is None


class TestCorruptionRecovery:
    def test_garbage_entry_is_deleted_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_cell()
        baseline = SweepRunner(cache=cache).run([spec])
        path = cache.entry_path(spec)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json !!!")
        rerun = SweepRunner(cache=cache).run([spec])
        result = next(iter(rerun))
        assert result.status == STATUS_OK  # recomputed, not crashed
        assert result.metrics.to_dict() == next(iter(baseline)).metrics.to_dict()
        assert cache.stats()["corrupt"] == 1
        # The recomputation rewrote a valid entry.
        assert cache.get(spec).to_dict() == result.metrics.to_dict()

    def test_valid_json_with_missing_fields_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_cell()
        cache.put(spec, execute_cell(spec))
        with open(cache.entry_path(spec), "w", encoding="utf-8") as handle:
            json.dump({"version": 1}, handle)
        assert cache.get(spec) is None
        assert not os.path.exists(cache.entry_path(spec))

    def test_wrong_cell_key_in_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_cell()
        cache.put(spec, execute_cell(spec))
        with open(cache.entry_path(spec), encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["cell_key"] = "0" * 64
        with open(cache.entry_path(spec), "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(spec) is None


class TestInvalidation:
    def test_invalidate_one_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_cell()
        cache.put(spec, execute_cell(spec))
        cache.invalidate(spec)
        assert cache.get(spec) is None

    def test_invalidate_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_cell()
        cache.put(spec, execute_cell(spec))
        cache.invalidate()
        assert not os.path.exists(cache.path)
        assert cache.get(spec) is None
        # And the cache still works after a full wipe.
        cache.put(spec, execute_cell(spec))
        assert cache.get(spec) is not None
