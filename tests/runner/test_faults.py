"""Fault paths: crashing cells, hung cells, bounded retries, isolation."""

import pytest

from repro.runner import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellSpec,
    SweepFailure,
    SweepRunner,
)
from repro.runner.testing import reset_crash_once

TINY = "repro.runner.testing:TinyWorkload"
CRASHY = "repro.runner.testing:CrashyWorkload"
CRASH_ONCE = "repro.runner.testing:CrashOnceWorkload"
SLEEPY = "repro.runner.testing:SleepyWorkload"


def cell(name, factory, **kw):
    defaults = dict(mode="native", ops=100)
    defaults.update(kw)
    return CellSpec.make(name, factory=factory, **defaults)


class TestSerialFaults:
    def test_crash_is_retried_then_reported_failed(self):
        result = SweepRunner(workers=1, retries=2).run([cell("crashy", CRASHY)])
        crashed = next(iter(result))
        assert crashed.status == STATUS_FAILED
        assert crashed.attempts == 3  # 1 try + 2 retries
        assert "crashy workload raised" in crashed.error

    def test_transient_crash_recovers_on_retry(self):
        reset_crash_once()
        result = SweepRunner(workers=1, retries=1).run(
            [cell("crash-once", CRASH_ONCE)])
        recovered = next(iter(result))
        assert recovered.status == STATUS_OK
        assert recovered.attempts == 2
        assert recovered.metrics is not None

    def test_zero_retries_means_one_attempt(self):
        reset_crash_once()
        result = SweepRunner(workers=1, retries=0).run(
            [cell("crash-once", CRASH_ONCE)])
        assert next(iter(result)).status == STATUS_FAILED
        assert next(iter(result)).attempts == 1

    def test_failed_cell_does_not_poison_siblings(self):
        sweep = SweepRunner(workers=1, retries=0).run([
            cell("tiny", TINY, seed=1),
            cell("crashy", CRASHY),
            cell("tiny", TINY, seed=2),
        ])
        statuses = [r.status for r in sweep]
        assert statuses == [STATUS_OK, STATUS_FAILED, STATUS_OK]

    def test_raise_on_failure_names_the_cell(self):
        sweep = SweepRunner(workers=1, retries=0).run([cell("crashy", CRASHY)])
        with pytest.raises(SweepFailure, match="crashy"):
            sweep.raise_on_failure()


class TestParallelFaults:
    def test_crash_reported_without_poisoning_siblings(self):
        sweep = SweepRunner(workers=2, retries=1).run([
            cell("crashy", CRASHY),
            cell("tiny", TINY, seed=1),
            cell("tiny", TINY, seed=2),
        ])
        by_name = {r.spec.workload: r for r in sweep}
        assert by_name["crashy"].status == STATUS_FAILED
        assert by_name["crashy"].attempts == 2
        assert by_name["tiny"].status == STATUS_OK
        assert all(r.status == STATUS_OK
                   for r in sweep if r.spec.workload == "tiny")

    def test_timeout_kills_the_cell_and_surfaces_it(self):
        sweep = SweepRunner(workers=2, timeout=1.0, retries=0).run([
            cell("sleepy", SLEEPY, sleep_seconds=30.0),
            cell("tiny", TINY),
        ])
        by_name = {r.spec.workload: r for r in sweep}
        assert by_name["sleepy"].status == STATUS_TIMEOUT
        assert "timeout" in by_name["sleepy"].error
        assert by_name["tiny"].status == STATUS_OK
        summary = sweep.summary()
        assert summary["timeout"] == 1 and summary["simulated"] == 1
        # The kill was prompt: nowhere near the 30s the cell wanted.
        assert sweep.elapsed < 15.0

    def test_timeout_is_retried_up_to_the_budget(self):
        sweep = SweepRunner(workers=2, timeout=0.5, retries=1).run(
            [cell("sleepy", SLEEPY, sleep_seconds=30.0)])
        hung = next(iter(sweep))
        assert hung.status == STATUS_TIMEOUT
        assert hung.attempts == 2


class TestRunnerValidation:
    def test_bad_construction_args(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)

    def test_duplicate_cells_run_once(self):
        sweep = SweepRunner(workers=1).run(
            [cell("tiny", TINY), cell("tiny", TINY)])
        assert len(sweep) == 1
