"""The differential harness: serial and parallel sweeps are bit-identical.

The sweep runner's core guarantee is that *where* a cell executes —
in-process, in a pool worker, or on a cache round-trip — never changes
its metrics. These tests run the same cell matrix serially and with
``workers >= 2`` and compare full-fidelity ``RunMetrics.to_dict()``
payloads for exact equality, including one paranoid-mode cell so the
shadow/guest coherence invariant checker vouches for at least one run
on both paths.

CI runs this module on every supported Python version with
``REPRO_WORKERS=2`` (see .github/workflows/ci.yml).
"""

import os

import pytest

from repro.analysis.experiments import table5, table5_cells
from repro.runner import (
    STATUS_CACHED,
    CellSpec,
    ResultCache,
    SweepRunner,
    shard_cells,
)

PARALLEL_WORKERS = max(2, int(os.environ.get("REPRO_WORKERS", "2")))

# The differential matrix: miss-heavy (mcf) and update-heavy (gcc)
# workloads under the two constituent techniques, one agile cell with
# paranoid-mode invariant checking enabled throughout.
MATRIX = [
    CellSpec.make(workload, mode=mode, ops=2_500)
    for workload in ("mcf", "gcc")
    for mode in ("shadow", "agile")
] + [
    CellSpec.make("astar", mode="agile", ops=2_500,
                  overrides={"paranoid": True}),
]


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        return SweepRunner(workers=1).run(MATRIX).raise_on_failure()

    @pytest.fixture(scope="class")
    def parallel(self):
        return (SweepRunner(workers=PARALLEL_WORKERS)
                .run(MATRIX).raise_on_failure())

    def test_matrix_completes_on_both_paths(self, serial, parallel):
        assert len(serial) == len(MATRIX)
        assert len(parallel) == len(MATRIX)

    def test_metrics_bit_identical(self, serial, parallel):
        for cell in MATRIX:
            a = serial.metrics_for(cell).to_dict()
            b = parallel.metrics_for(cell).to_dict()
            assert a == b, cell.describe()

    def test_paranoid_cell_ran_and_agrees(self, serial, parallel):
        paranoid = MATRIX[-1]
        assert paranoid.build_config().paranoid is True
        assert (serial.metrics_for(paranoid).to_dict()
                == parallel.metrics_for(paranoid).to_dict())

    def test_input_order_does_not_matter(self, parallel):
        reversed_sweep = (SweepRunner(workers=PARALLEL_WORKERS)
                          .run(list(reversed(MATRIX))).raise_on_failure())
        for cell in MATRIX:
            assert (reversed_sweep.metrics_for(cell).to_dict()
                    == parallel.metrics_for(cell).to_dict())


class TestTraceDeterminism:
    """Telemetry rides the same differential guarantee as metrics:
    the trace payload a cell produces is byte-identical whether the
    cell ran in-process or in a pool worker."""

    TRACE_CELLS = [
        CellSpec.make("mcf", mode="agile", ops=2_500),
        CellSpec.make("gcc", mode="shadow", ops=2_500),
    ]

    def run_traced(self, tmp_path, workers, tag):
        trace_dir = tmp_path / tag
        sweep = (SweepRunner(workers=workers, trace_dir=str(trace_dir))
                 .run(self.TRACE_CELLS).raise_on_failure())
        files = {}
        for result in sweep:
            assert result.trace_path, result.spec.describe()
            with open(result.trace_path, "rb") as handle:
                files[result.spec.cell_key()] = handle.read()
        return files

    def test_trace_files_bit_identical_serial_vs_parallel(self, tmp_path):
        serial = self.run_traced(tmp_path, 1, "serial")
        parallel = self.run_traced(tmp_path, PARALLEL_WORKERS, "parallel")
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key] == parallel[key], key

    def test_trace_jsonl_bit_identical_across_paths(self, tmp_path):
        """The exported JSONL event stream — not just the container
        payload — is byte-for-byte stable across execution paths."""
        import json

        from repro.obs.exporters import jsonl_bytes, payload_events

        serial = self.run_traced(tmp_path, 1, "s2")
        parallel = self.run_traced(tmp_path, PARALLEL_WORKERS, "p2")
        for key in serial:
            a = jsonl_bytes(payload_events(json.loads(serial[key])))
            b = jsonl_bytes(payload_events(json.loads(parallel[key])))
            assert a == b, key


class TestDeterministicSharding:
    def test_shards_partition_the_cells(self):
        shards = shard_cells(MATRIX, 3)
        assert sum(len(s) for s in shards) == len(MATRIX)
        seen = {c.cell_key() for shard in shards for c in shard}
        assert seen == {c.cell_key() for c in MATRIX}

    def test_assignment_ignores_input_order(self):
        forward = shard_cells(MATRIX, 3)
        backward = shard_cells(list(reversed(MATRIX)), 3)
        for k in range(3):
            assert ({c.cell_key() for c in forward[k]}
                    == {c.cell_key() for c in backward[k]})

    def test_runner_shard_argument_selects_the_subset(self):
        cells = table5_cells(ops=100)
        shards = shard_cells(cells, 2)
        sweep = SweepRunner(workers=1).run(cells, shard=(0, 2))
        assert len(sweep) == len(shards[0])
        assert ({r.spec.cell_key() for r in sweep}
                == {c.cell_key() for c in shards[0]})


class TestTable5WarmCache:
    def test_warm_rerun_simulates_nothing_and_matches(self, tmp_path):
        """Acceptance: a warm-cache Table 5 rerun re-simulates zero cells."""
        ops = 1_200
        cold_runner = SweepRunner(workers=PARALLEL_WORKERS,
                                  cache=ResultCache(tmp_path))
        cold = table5(ops=ops, runner=cold_runner)

        warm_runner = SweepRunner(workers=PARALLEL_WORKERS,
                                  cache=ResultCache(tmp_path))
        warm = table5(ops=ops, runner=warm_runner)

        warm_sweep = warm_runner.run(table5_cells(ops=ops))
        assert warm_sweep.simulated == 0
        assert all(r.status == STATUS_CACHED for r in warm_sweep)

        assert set(cold) == set(warm)
        for name in cold:
            assert cold[name].to_dict() == warm[name].to_dict(), name


class TestMetricsAggregation:
    """Runner heartbeat metrics obey the same differential guarantee:
    counters and histograms depend only on which cells completed and
    their deterministic results, so a serial sweep and the merge of its
    shard snapshots must agree exactly. (The cells/sec gauge is the one
    wall-clock-derived value and is deliberately excluded.)"""

    def _swept(self, cells, shard=None, workers=1):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        (SweepRunner(workers=workers, metrics=registry)
         .run(cells, shard=shard).raise_on_failure())
        return registry.snapshot()

    def test_serial_equals_merged_shard_totals(self):
        serial = self._swept(MATRIX)
        shards = [self._swept(MATRIX, shard=(k, 3)) for k in range(3)]
        merged = shards[0].merge(shards[1]).merge(shards[2])
        assert merged.counters == serial.counters
        assert merged.histograms == serial.histograms

    def test_parallel_equals_serial_totals(self):
        serial = self._swept(MATRIX)
        parallel = self._swept(MATRIX, workers=PARALLEL_WORKERS)
        assert parallel.counters == serial.counters
        assert parallel.histograms == serial.histograms

    def test_heartbeats_count_every_cell(self):
        snap = self._swept(MATRIX)
        assert snap.counters["runner.cells.ok"] == len(MATRIX)
        assert snap.counters["runner.sim_ops"] == sum(
            spec.ops for spec in MATRIX)
        assert snap.histograms["runner.cell_sim_ops"]["count"] == len(MATRIX)
