"""Unit tests for CellSpec: canonicalization, identity, materialization."""

import pytest

from repro.common.config import PWCConfig
from repro.common.params import FOUR_KB, TWO_MB
from repro.runner import CellSpec, SpecError, canonicalize_overrides, execute_cell

TINY = "repro.runner.testing:TinyWorkload"


class TestCanonicalization:
    def test_override_order_is_irrelevant(self):
        a = CellSpec.make("mcf", overrides={"hw_ad_assist": False,
                                            "pwc.enabled": False})
        b = CellSpec.make("mcf", overrides={"pwc.enabled": False,
                                            "hw_ad_assist": False})
        assert a == b
        assert a.cell_key() == b.cell_key()

    def test_page_size_object_and_name_agree(self):
        assert (CellSpec.make("mcf", page_size=TWO_MB)
                == CellSpec.make("mcf", page_size="2M"))

    def test_dataclass_override_flattens_to_dotted_leaves(self):
        frozen = canonicalize_overrides({"pwc": PWCConfig(enabled=False)})
        assert dict(frozen) == {"pwc.enabled": False,
                                "pwc.entries_per_table": 32}

    def test_nested_dict_override_flattens(self):
        frozen = canonicalize_overrides({"policy": {"write_threshold": 4}})
        assert frozen == (("policy.write_threshold", 4),)

    def test_page_size_override_value_stored_by_name(self):
        frozen = canonicalize_overrides({"host_page_size": FOUR_KB})
        assert frozen == (("host_page_size", "4K"),)

    def test_unsupported_override_type_raises(self):
        with pytest.raises(SpecError):
            canonicalize_overrides({"tlbs": object()})


class TestIdentity:
    def test_key_is_stable_and_content_addressed(self):
        spec = CellSpec.make("mcf", mode="agile", ops=1000, seed=3)
        assert spec.cell_key() == spec.cell_key()
        assert spec.cell_key() != CellSpec.make(
            "mcf", mode="agile", ops=1000, seed=4).cell_key()
        assert spec.cell_key() != CellSpec.make(
            "mcf", mode="shadow", ops=1000, seed=3).cell_key()

    def test_dict_round_trip(self):
        spec = CellSpec.make("dedup", mode="shadow", page_size="2M", ops=500,
                             seed=11, overrides={"pwc.enabled": False},
                             chunk_pages=2)
        assert CellSpec.from_dict(spec.as_dict()) == spec

    def test_validation(self):
        with pytest.raises(SpecError):
            CellSpec.make("mcf", mode="paravirt")
        with pytest.raises(SpecError):
            CellSpec.make("mcf", page_size="8K")
        with pytest.raises(SpecError):
            CellSpec.make("mcf", ops=0)

    def test_describe(self):
        assert CellSpec.make("mcf").describe() == "mcf/agile/4K"
        labelled = CellSpec.make("mcf", seed=3,
                                 overrides={"paranoid": True}).describe()
        assert "s3" in labelled and "ovr" in labelled


class TestBuildConfig:
    def test_dotted_overrides_apply(self):
        config = CellSpec.make(
            "mcf", mode="shadow", page_size="2M",
            overrides={"pwc.enabled": False, "policy.write_threshold": 9,
                       "paranoid": True}).build_config()
        assert config.mode == "shadow"
        assert config.page_size is TWO_MB
        assert config.pwc.enabled is False
        assert config.policy.write_threshold == 9
        assert config.paranoid is True

    def test_page_size_field_override_resolves_name(self):
        config = CellSpec.make(
            "mcf", page_size="2M",
            overrides={"host_page_size": "4K"}).build_config()
        assert config.host_page_size is FOUR_KB

    def test_unknown_field_raises(self):
        with pytest.raises(SpecError):
            CellSpec.make("mcf", overrides={"pwc.entires": 1}).build_config()
        with pytest.raises(SpecError):
            CellSpec.make("mcf", overrides={"typo_field": 1}).build_config()

    def test_non_nested_field_rejects_dotted_path(self):
        with pytest.raises(SpecError):
            CellSpec.make("mcf",
                          overrides={"paranoid.deep": True}).build_config()


class TestBuildWorkload:
    def test_suite_lookup_and_cell_seed_threading(self):
        workload = CellSpec.make("mcf", ops=1234, seed=9).build_workload()
        assert workload.name == "mcf"
        assert workload.ops == 1234
        assert workload.seed == 9

    def test_default_seed_is_the_class_default(self):
        workload = CellSpec.make("mcf", ops=100).build_workload()
        assert workload.seed == 47  # McfLike's documented default

    def test_workload_page_size_follows_config(self):
        workload = CellSpec.make("mcf", page_size="2M", ops=100).build_workload()
        assert workload.page_size is TWO_MB

    def test_factory_resolution_and_kwargs(self):
        spec = CellSpec.make("tiny", factory=TINY, ops=50, pages=4)
        workload = spec.build_workload()
        assert type(workload).__name__ == "TinyWorkload"
        assert workload.pages == 4

    def test_workload_class_argument(self):
        from repro.runner.testing import TinyWorkload
        from repro.workloads.suite import McfLike

        by_class = CellSpec.make(McfLike, ops=100)
        assert by_class.workload == "mcf" and by_class.factory is None
        external = CellSpec.make(TinyWorkload, ops=100)
        assert external.factory == TINY

    def test_unknown_workload_raises(self):
        with pytest.raises(SpecError):
            CellSpec.make("doom", ops=100).build_workload()
        with pytest.raises(SpecError):
            CellSpec.make("x", factory="no.such.module:Nope",
                          ops=100).build_workload()


class TestExecuteCell:
    def test_execute_is_deterministic(self):
        spec = CellSpec.make("tiny", factory=TINY, mode="shadow", ops=300,
                             seed=5)
        first = execute_cell(spec)
        second = execute_cell(spec)
        assert first.to_dict() == second.to_dict()
        assert first.mode == "shadow"
        assert first.ops == 300
