"""Fixture tests for the time-domain rules (REPRO701–REPRO704).

Same discipline as the address-domain fixtures: every positive fixture
makes its rule fire *exactly once*, the negative variant shows the same
shape with the contract satisfied, and a ``# repro: noqa[...]`` variant
proves the per-line suppression machinery covers the time rules too.

Fixtures are written as a fake ``repro`` package so module naming works
— the analyzer decides the clock side of a bare ``self.clock`` from the
module tail (``host/scheduler.py`` is host-side, everything else is
guest-side) and host-clock authority from ``(module, class)``.
"""

from repro.lint.engine import LintEngine
from repro.lint.time.rules import (
    TIME_RULES,
    ClockAuthorityRule,
    CrossClockArithmeticRule,
    CycleConservationRule,
    MetricsMergeClosureRule,
)


def time_lint(tmp_path, sources, rules=TIME_RULES):
    """Write ``{relpath: source}`` as a fake ``repro`` package and lint it."""
    for relpath, source in sources.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    findings, _checked = LintEngine(rules).run([str(tmp_path / "repro")])
    return findings


class TestCrossClockArithmetic:
    MIXED = (
        "from repro.common.timedomain import cycles\n"
        "\n"
        "@cycles(begin=\"host_wall\", window_start=\"guest_sim\")\n"
        "def skew(begin, window_start):\n"
        "    return window_start - begin\n"
    )

    def test_host_minus_guest_fires_once(self, tmp_path):
        findings = time_lint(tmp_path, {"vmm/policies.py": self.MIXED},
                             [CrossClockArithmeticRule()])
        assert [f.rule_id for f in findings] == ["REPRO701"]
        assert "cross-clock arithmetic" in findings[0].message
        assert "host_wall" in findings[0].message

    def test_compatible_guest_instants_are_clean(self, tmp_path):
        findings = time_lint(tmp_path, {"vmm/policies.py": (
            "from repro.common.timedomain import cycles\n"
            "\n"
            "@cycles(\"duration\")\n"
            "@cycles(begin=\"vm_virtual\", end=\"guest_sim\")\n"
            "def elapsed(begin, end):\n"
            "    return end - begin\n"
        )}, [CrossClockArithmeticRule()])
        assert findings == []

    def test_cross_clock_comparison_fires_once(self, tmp_path):
        findings = time_lint(tmp_path, {"vmm/policies.py": (
            "from repro.common.timedomain import cycles\n"
            "\n"
            "@cycles(deadline=\"host_wall\", now=\"guest_sim\")\n"
            "def expired(deadline, now):\n"
            "    return now >= deadline\n"
        )}, [CrossClockArithmeticRule()])
        assert [f.rule_id for f in findings] == ["REPRO701"]
        assert "cross-clock comparison" in findings[0].message

    def test_wrong_clock_argument_fires_once(self, tmp_path):
        findings = time_lint(tmp_path, {"vmm/policies.py": (
            "from repro.common.timedomain import cycles\n"
            "\n"
            "@cycles(now=\"guest_sim\")\n"
            "def tick(now):\n"
            "    return now\n"
            "\n"
            "@cycles(stamp=\"host_wall\")\n"
            "def drive(stamp):\n"
            "    tick(stamp)\n"
        )}, [CrossClockArithmeticRule()])
        assert [f.rule_id for f in findings] == ["REPRO701"]
        assert "`now`" in findings[0].message
        assert "host_wall" in findings[0].message

    def test_instant_where_duration_declared_fires_once(self, tmp_path):
        findings = time_lint(tmp_path, {"vmm/policies.py": (
            "from repro.common.timedomain import cycles\n"
            "\n"
            "@cycles(step=\"duration\")\n"
            "def settle(step):\n"
            "    return step\n"
            "\n"
            "@cycles(now=\"guest_sim\")\n"
            "def drive(now):\n"
            "    settle(now)\n"
        )}, [CrossClockArithmeticRule()])
        assert [f.rule_id for f in findings] == ["REPRO701"]
        assert "epoch/interval" in findings[0].message

    def test_instant_returned_as_duration_fires_once(self, tmp_path):
        findings = time_lint(tmp_path, {"core/machine.py": (
            "from repro.common.timedomain import cycles\n"
            "\n"
            "class System:\n"
            "    @cycles(\"duration\")\n"
            "    def window(self):\n"
            "        return self.clock.now\n"
        )}, [CrossClockArithmeticRule()])
        assert [f.rule_id for f in findings] == ["REPRO701"]
        assert "epoch/interval" in findings[0].message

    def test_instant_difference_is_a_duration(self, tmp_path):
        findings = time_lint(tmp_path, {"core/machine.py": (
            "from repro.common.timedomain import cycles\n"
            "\n"
            "class System:\n"
            "    @cycles(\"duration\")\n"
            "    @cycles(start=\"guest_sim\")\n"
            "    def window(self, start):\n"
            "        return self.clock.now - start\n"
        )}, [CrossClockArithmeticRule()])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = time_lint(tmp_path, {"vmm/policies.py": (
            "from repro.common.timedomain import cycles\n"
            "\n"
            "@cycles(begin=\"host_wall\", window_start=\"guest_sim\")\n"
            "def skew(begin, window_start):\n"
            "    return window_start - begin  # repro: noqa[REPRO701]\n"
        )}, [CrossClockArithmeticRule()])
        assert findings == []


class TestClockAuthority:
    def test_advance_through_virtualclock_host_fires_once(self, tmp_path):
        findings = time_lint(tmp_path, {"vmm/vmm.py": (
            "class VMM:\n"
            "    def __init__(self, clock):\n"
            "        self.clock = clock\n"
            "\n"
            "    def poke(self):\n"
            "        self.clock.host.advance(5)\n"
        )}, [ClockAuthorityRule()])
        assert [f.rule_id for f in findings] == ["REPRO702"]
        assert "VirtualClock" in findings[0].message

    def test_missing_advances_declaration_fires_once(self, tmp_path):
        # VCpuScheduler *is* the host-clock authority, so the only
        # REPRO702 finding is the missing @advances declaration.
        findings = time_lint(tmp_path, {"host/scheduler.py": (
            "from repro.common.timedomain import charges\n"
            "\n"
            "class VCpuScheduler:\n"
            "    @charges(\"world_switch_cycles\")\n"
            "    def world_switch(self):\n"
            "        self.clock.advance(5)\n"
        )}, [ClockAuthorityRule()])
        assert [f.rule_id for f in findings] == ["REPRO702"]
        assert "@advances" in findings[0].message

    def test_host_advance_declared_outside_authority_fires_once(
            self, tmp_path):
        findings = time_lint(tmp_path, {"vmm/policies.py": (
            "from repro.common.timedomain import advances, charges\n"
            "\n"
            "@advances(\"host_wall\")\n"
            "@charges(\"sink:rogue\")\n"
            "def bill(amount):\n"
            "    pass\n"
        )}, [ClockAuthorityRule()])
        assert [f.rule_id for f in findings] == ["REPRO702"]
        assert "VCpuScheduler" in findings[0].message

    def test_authorized_scheduler_is_clean(self, tmp_path):
        findings = time_lint(tmp_path, {"host/scheduler.py": (
            "from repro.common.timedomain import advances, charges\n"
            "\n"
            "class VCpuScheduler:\n"
            "    @advances(\"host_wall\")\n"
            "    @charges(\"world_switch_cycles\")\n"
            "    def world_switch(self):\n"
            "        self.clock.advance(5)\n"
        )})
        assert findings == []

    def test_clock_module_pass_through_is_exempt(self, tmp_path):
        findings = time_lint(tmp_path, {"common/clock.py": (
            "class VirtualClock:\n"
            "    def advance(self, cycles):\n"
            "        self.now += cycles\n"
            "        self.host.advance(cycles)\n"
        )})
        assert findings == []


class TestCycleConservation:
    def test_uncharged_advance_fires_once(self, tmp_path):
        findings = time_lint(tmp_path, {"core/machine.py": (
            "from repro.common.timedomain import advances\n"
            "\n"
            "class System:\n"
            "    @advances(\"guest_sim\")\n"
            "    def step(self):\n"
            "        self.clock.advance(3)\n"
        )}, [CycleConservationRule()])
        assert [f.rule_id for f in findings] == ["REPRO703"]
        assert "@charges" in findings[0].message

    def test_charged_advance_is_clean(self, tmp_path):
        findings = time_lint(tmp_path, {"core/machine.py": (
            "from repro.common.timedomain import advances, charges\n"
            "\n"
            "class System:\n"
            "    @advances(\"guest_sim\")\n"
            "    @charges(\"ideal_cycles\")\n"
            "    def step(self):\n"
            "        self.clock.advance(3)\n"
        )})
        assert findings == []

    def test_sink_charge_is_clean(self, tmp_path):
        findings = time_lint(tmp_path, {"core/machine.py": (
            "from repro.common.timedomain import advances, charges\n"
            "\n"
            "class System:\n"
            "    @advances(\"guest_sim\")\n"
            "    @charges(\"sink:warmup\")\n"
            "    def settle(self):\n"
            "        self.clock.advance(100)\n"
        )})
        assert findings == []

    def test_unknown_counter_name_fires_once(self, tmp_path):
        findings = time_lint(tmp_path, {"core/machine.py": (
            "from repro.common.timedomain import advances, charges\n"
            "\n"
            "class System:\n"
            "    @advances(\"guest_sim\")\n"
            "    @charges(\"bogus_counter\")\n"
            "    def step(self):\n"
            "        self.clock.advance(3)\n"
        )}, [CycleConservationRule()])
        assert [f.rule_id for f in findings] == ["REPRO703"]
        assert "bogus_counter" in findings[0].message

    def test_advance_in_nested_helper_is_attributed(self, tmp_path):
        # The fastpath `_flush` shape: the advance lives in a closure
        # but must be attributed to the enclosing (annotatable) method.
        findings = time_lint(tmp_path, {"core/fastpath.py": (
            "from repro.common.timedomain import advances\n"
            "\n"
            "class FastSystem:\n"
            "    @advances(\"guest_sim\")\n"
            "    def access_batch(self):\n"
            "        clock = self.clock\n"
            "        def _flush():\n"
            "            clock.advance(7)\n"
            "        _flush()\n"
        )}, [CycleConservationRule()])
        assert [f.rule_id for f in findings] == ["REPRO703"]
        assert "access_batch" in findings[0].message


class TestMetricsMergeClosure:
    def test_cycle_field_missing_from_to_dict_fires(self, tmp_path):
        findings = time_lint(tmp_path, {"core/metrics.py": (
            "class RunMetrics:\n"
            "    def __init__(self):\n"
            "        self.walk_cycles = 0\n"
            "\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        )}, [MetricsMergeClosureRule()])
        assert [f.rule_id for f in findings] == ["REPRO704"]
        assert "walk_cycles" in findings[0].message
        assert "to_dict" in findings[0].message

    def test_phantom_counter_fires(self, tmp_path):
        findings = time_lint(tmp_path, {
            "common/timedomain.py": (
                "CYCLE_COUNTERS = (\"ghost_cycles\",)\n"
            ),
            "core/metrics.py": (
                "class RunMetrics:\n"
                "    def __init__(self):\n"
                "        self.ops = 0\n"
            ),
        }, [MetricsMergeClosureRule()])
        assert [f.rule_id for f in findings] == ["REPRO704"]
        assert "ghost_cycles" in findings[0].message

    def test_snapshot_slot_missing_from_merge_fires(self, tmp_path):
        findings = time_lint(tmp_path, {"obs/metrics.py": (
            "class MetricsSnapshot:\n"
            "    __slots__ = (\"counters\", \"gauges\")\n"
            "\n"
            "    def merge(self, other):\n"
            "        self.counters.update(other.counters)\n"
            "\n"
            "    def to_dict(self):\n"
            "        return {\"counters\": self.counters,\n"
            "                \"gauges\": self.gauges}\n"
        )}, [MetricsMergeClosureRule()])
        assert [f.rule_id for f in findings] == ["REPRO704"]
        assert "gauges" in findings[0].message
        assert "merge" in findings[0].message

    def test_closed_metrics_are_clean(self, tmp_path):
        findings = time_lint(tmp_path, {
            "common/timedomain.py": (
                "CYCLE_COUNTERS = (\"total_cycles\", \"walk_cycles\")\n"
            ),
            "core/metrics.py": (
                "class RunMetrics:\n"
                "    def __init__(self):\n"
                "        self.total_cycles = 0\n"
                "        self.walk_cycles = 0\n"
                "\n"
                "    def to_dict(self):\n"
                "        return {\"total_cycles\": self.total_cycles,\n"
                "                \"walk_cycles\": self.walk_cycles}\n"
                "\n"
                "    @classmethod\n"
                "    def from_dict(cls, data):\n"
                "        metrics = cls()\n"
                "        for name in (\"total_cycles\", \"walk_cycles\"):\n"
                "            setattr(metrics, name, data[name])\n"
                "        return metrics\n"
            ),
            "obs/metrics.py": (
                "class MetricsSnapshot:\n"
                "    __slots__ = (\"counters\",)\n"
                "\n"
                "    def merge(self, other):\n"
                "        self.counters.update(other.counters)\n"
                "\n"
                "    def to_dict(self):\n"
                "        return {\"counters\": self.counters}\n"
            ),
        })
        assert findings == []


def test_full_rule_set_reports_each_code_once_per_cause(tmp_path):
    """One tree with one violation per rule: the full TIME_RULES set
    attributes each finding to its own code, nothing doubles up."""
    findings = time_lint(tmp_path, {
        "vmm/policies.py": (
            "from repro.common.timedomain import cycles\n"
            "\n"
            "@cycles(begin=\"host_wall\", window_start=\"guest_sim\")\n"
            "def skew(begin, window_start):\n"
            "    return window_start - begin\n"
        ),
        "vmm/vmm.py": (
            "from repro.common.timedomain import charges\n"
            "\n"
            "class VMM:\n"
            "    @charges(\"vmm_cycles\")\n"
            "    def poke(self):\n"
            "        self.clock.host.advance(5)\n"
        ),
        "core/machine.py": (
            "from repro.common.timedomain import advances\n"
            "\n"
            "class System:\n"
            "    @advances(\"guest_sim\")\n"
            "    def step(self):\n"
            "        self.clock.advance(3)\n"
        ),
        "core/metrics.py": (
            "class RunMetrics:\n"
            "    def __init__(self):\n"
            "        self.walk_cycles = 0\n"
            "\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        ),
    })
    assert sorted(f.rule_id for f in findings) == [
        "REPRO701", "REPRO702", "REPRO703", "REPRO704"]
