"""Editing the time analyzer invalidates cached lint results.

The :class:`~repro.lint.cache.LintCache` key folds in a recursive code
fingerprint of the ``repro.lint`` package; the ``time`` subpackage is
new, so this pins that an edit there (a lattice tweak, a new authority)
flips the key and forces a cold re-analysis rather than serving
findings the old analyzer produced.
"""

import shutil

import repro.lint.cache as cache_module
from repro.lint.cache import LintCache
from repro.runner.fingerprint import clear_fingerprint_cache


def test_editing_time_package_changes_cache_key(tmp_path, monkeypatch):
    copy = tmp_path / "lintpkg"
    shutil.copytree(cache_module._lint_package_root(), copy,
                    ignore=shutil.ignore_patterns("__pycache__"))
    assert (copy / "time" / "infer.py").is_file()

    monkeypatch.setattr(cache_module, "_lint_package_root",
                        lambda: str(copy))
    cache = LintCache(str(tmp_path / "cache"))
    hashes = [("mod.py", "abc")]

    clear_fingerprint_cache()
    key_before = cache.key_for(hashes, ["REPRO701"])
    # Fingerprints memoize per process; same tree, same key.
    assert cache.key_for(hashes, ["REPRO701"]) == key_before

    infer = copy / "time" / "infer.py"
    infer.write_text(infer.read_text() + "\n_TWEAKED = True\n")
    clear_fingerprint_cache()
    key_after = cache.key_for(hashes, ["REPRO701"])
    assert key_after != key_before

    clear_fingerprint_cache()  # don't leak the copy's entry to other tests
