"""Fixture tests for the interprocedural rules (REPRO4xx/5xx).

Each positive fixture makes its rule fire *exactly once*; the clean
variants show the same shape with the contract satisfied. Fixtures are
written as a fake ``repro`` package (``__init__.py`` chains included)
so module naming, layer lookup, and relative-import resolution behave
exactly as on the real tree.
"""

from repro.lint.engine import LintEngine
from repro.lint.flow.analysis import build_program
from repro.lint.flow.rules import (
    ConfigKeysRule,
    DeterminismTaintRule,
    DispatchExhaustivenessRule,
    EventTaxonomyRule,
    LayeringRule,
    ShadowAuthorityRule,
    SwitchingProvenanceRule,
)
from repro.lint.rules import UnseededRandomRule, _import_aliases


def flow_lint(tmp_path, sources, rules):
    """Write ``{relpath: source}`` as a fake ``repro`` package and lint it."""
    for relpath, source in sources.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    findings, _checked = LintEngine(rules).run([str(tmp_path / "repro")])
    return findings


SHADOW_MGR = (
    "class ShadowManager:\n"
    "    @mutates(\"shadow_pt\")\n"
    "    def fill_for(self, proc, va):\n"
    "        return None\n"
)


class TestShadowAuthority:
    def test_unauthorized_caller_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "vmm/shadowmgr.py": SHADOW_MGR,
            "core/machine.py": (
                "class Machine:\n"
                "    def access(self, proc, va):\n"
                "        self.manager.fill_for(proc, va)\n"
            ),
        }, [ShadowAuthorityRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO401"
        assert "fill_for" in findings[0].message
        assert findings[0].path.endswith("core/machine.py")

    def test_trap_handler_and_peer_mutator_are_authorized(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "vmm/shadowmgr.py": SHADOW_MGR,
            "vmm/vmm.py": (
                "class VMM:\n"
                "    @trap_handler\n"
                "    def handle_shadow_fault(self, proc, va):\n"
                "        self.manager.fill_for(proc, va)\n"
            ),
            "vmm/other.py": (
                "class Other:\n"
                "    @mutates(\"shadow_pt\")\n"
                "    def rebuild(self, proc, va):\n"
                "        self.manager.fill_for(proc, va)\n"
            ),
        }, [ShadowAuthorityRule()])
        assert findings == []


SWITCH_MGR = (
    "class ShadowManager:\n"
    "    @mutates(\"switching_bits\")\n"
    "    def switch_to_nested(self, gfn):\n"
    "        return None\n"
)


class TestSwitchingProvenance:
    def test_unauthorized_caller_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "vmm/shadowmgr.py": SWITCH_MGR,
            # A policy reaches the mutator, so only the authority half
            # of the rule has anything to say.
            "vmm/policies.py": (
                "class Policy:\n"
                "    @policy_decision\n"
                "    def tick(self, manager):\n"
                "        manager.switch_to_nested(0)\n"
            ),
            "core/machine.py": (
                "class Machine:\n"
                "    def step(self):\n"
                "        self.manager.switch_to_nested(0)\n"
            ),
        }, [SwitchingProvenanceRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO402"
        assert "without trap/policy/shadow authority" in findings[0].message

    def test_unreachable_mutator_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "vmm/shadowmgr.py": SWITCH_MGR,
            "vmm/vmm.py": (
                "class VMM:\n"
                "    @trap_handler\n"
                "    def handle_fault(self, gfn):\n"
                "        self.manager.switch_to_nested(gfn)\n"
            ),
        }, [SwitchingProvenanceRule()])
        assert len(findings) == 1
        assert "not reachable from any @policy_decision" in findings[0].message
        assert findings[0].path.endswith("vmm/shadowmgr.py")

    def test_policy_reachable_mutator_is_clean(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "vmm/shadowmgr.py": SWITCH_MGR,
            "vmm/policies.py": (
                "class Policy:\n"
                "    @policy_decision\n"
                "    def tick(self, manager):\n"
                "        manager.switch_to_nested(0)\n"
            ),
        }, [SwitchingProvenanceRule()])
        assert findings == []


class TestDeterminismTaint:
    def test_indirect_wall_clock_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "common/util.py": (
                "import time\n"
                "def _now():\n"
                "    return time.time()\n"
            ),
            "core/machine.py": (
                "from repro.common.util import _now\n"
                "def step():\n"
                "    return _now()\n"
            ),
        }, [DeterminismTaintRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO403"
        assert findings[0].path.endswith("core/machine.py")
        assert "repro.core.machine.step -> repro.common.util._now" \
            in findings[0].message

    def test_taint_propagates_through_helper_layers(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "runner/wall.py": (
                "import time\n"
                "def wall_now():\n"
                "    return time.monotonic()\n"
            ),
            "runner/mid.py": (
                "from repro.runner.wall import wall_now\n"
                "def elapsed():\n"
                "    return wall_now()\n"
            ),
            "vmm/vmm.py": (
                "from repro.runner.mid import elapsed\n"
                "def policy_tick():\n"
                "    return elapsed()\n"
            ),
        }, [DeterminismTaintRule()])
        # runner/ is out of scope, so only the vmm call site fires —
        # two hops away from the actual time.monotonic() read.
        assert len(findings) == 1
        assert findings[0].path.endswith("vmm/vmm.py")
        assert "wall_now" in findings[0].message

    def test_suppressing_the_source_does_not_hide_the_leak(self, tmp_path):
        sources = {
            "common/util.py": (
                "import time\n"
                "def _now():\n"
                "    return time.time()  # lint: disable=all\n"
            ),
            "core/machine.py": (
                "from repro.common.util import _now\n"
                "def step():\n"
                "    return _now()\n"
            ),
        }
        findings = flow_lint(tmp_path, sources,
                             [UnseededRandomRule(), DeterminismTaintRule()])
        # REPRO101 is silenced at the source line, but the taint finding
        # is anchored at the caller and survives.
        assert [f.rule_id for f in findings] == ["REPRO403"]

    def test_out_of_scope_callers_are_ignored(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "runner/wall.py": (
                "import time\n"
                "def wall_now():\n"
                "    return time.monotonic()\n"
            ),
            "runner/sweep.py": (
                "from repro.runner.wall import wall_now\n"
                "def progress():\n"
                "    return wall_now()\n"
            ),
        }, [DeterminismTaintRule()])
        assert findings == []


class TestEventTaxonomy:
    TRACER = (
        "class NullTracer:\n"
        "    def mark(self, now, label):\n"
        "        pass\n"
        "class Tracer(NullTracer):\n"
        "    def mark(self, now, label):\n"
        "        self._emit(EV_MARK, now)\n"
    )

    def test_typoed_emit_method_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "obs/tracer.py": self.TRACER,
            "core/machine.py": (
                "class Machine:\n"
                "    def run(self):\n"
                "        self.tracer.makr(0, \"boot\")\n"
            ),
        }, [EventTaxonomyRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO404"
        assert "makr" in findings[0].message

    def test_stray_event_kind_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "obs/tracer.py": self.TRACER,
            "obs/events.py": (
                "EV_MARK = \"mark\"\n"
                "EV_GHOST = \"ghost\"\n"
                "ALL_EVENT_KINDS = (EV_MARK,)\n"
            ),
        }, [EventTaxonomyRule()])
        assert len(findings) == 1
        assert "EV_GHOST" in findings[0].message

    def test_interface_calls_and_closed_taxonomy_are_clean(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "obs/tracer.py": self.TRACER,
            "obs/events.py": (
                "EV_MARK = \"mark\"\n"
                "ALL_EVENT_KINDS = (EV_MARK,)\n"
            ),
            "core/machine.py": (
                "class Machine:\n"
                "    def run(self):\n"
                "        self.tracer.mark(0, \"boot\")\n"
            ),
        }, [EventTaxonomyRule()])
        assert findings == []


class TestDispatchExhaustiveness:
    def test_missing_op_handler_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "fuzz/scenario.py": "OP_KINDS = (\"read\", \"write\")\n",
            "fuzz/oracle.py": (
                "class Oracle:\n"
                "    def apply(self, op):\n"
                "        return getattr(self, \"_op_\" + op.kind)(op)\n"
                "    def _op_read(self, op):\n"
                "        return 1\n"
            ),
        }, [DispatchExhaustivenessRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO405"
        assert "write" in findings[0].message

    def test_incomplete_closed_mode_chain_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "common/config.py": (
                "MODE_SHADOW = \"shadow\"\n"
                "MODE_NESTED = \"nested\"\n"
                "ALL_MODES = (MODE_SHADOW, MODE_NESTED)\n"
            ),
            "hw/walker.py": (
                "from repro.common.config import MODE_SHADOW\n"
                "def walk(mode):\n"
                "    if mode == MODE_SHADOW:\n"
                "        return 1\n"
                "    else:\n"
                "        raise ValueError(mode)\n"
                "    return None\n"
            ),
        }, [DispatchExhaustivenessRule()])
        # A single-branch if/else is not a chain; make it one.
        assert findings == []
        findings = flow_lint(tmp_path, {
            "hw/walker.py": (
                "from repro.common.config import MODE_SHADOW\n"
                "def walk(mode):\n"
                "    if mode == MODE_SHADOW:\n"
                "        return 1\n"
                "    elif mode == \"shadow\":\n"
                "        return 2\n"
                "    else:\n"
                "        raise ValueError(mode)\n"
            ),
        }, [DispatchExhaustivenessRule()])
        assert len(findings) == 1
        assert "missing: nested" in findings[0].message

    def test_open_chain_is_not_an_exhaustiveness_claim(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "common/config.py": (
                "MODE_SHADOW = \"shadow\"\n"
                "MODE_NESTED = \"nested\"\n"
                "ALL_MODES = (MODE_SHADOW, MODE_NESTED)\n"
            ),
            "hw/walker.py": (
                "from repro.common.config import MODE_SHADOW\n"
                "def walk(mode):\n"
                "    if mode == MODE_SHADOW:\n"
                "        return 1\n"
                "    elif mode == \"shadow\":\n"
                "        return 2\n"
                "    return 0\n"
            ),
        }, [DispatchExhaustivenessRule()])
        assert findings == []

    def test_early_return_run_closed_by_raise(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "common/config.py": (
                "MODE_SHADOW = \"shadow\"\n"
                "MODE_NESTED = \"nested\"\n"
                "MODE_AGILE = \"agile\"\n"
                "ALL_MODES = (MODE_SHADOW, MODE_NESTED, MODE_AGILE)\n"
            ),
            "hw/walker.py": (
                "from repro.common.config import MODE_NESTED, MODE_SHADOW\n"
                "def walk(mode):\n"
                "    if mode == MODE_SHADOW:\n"
                "        return 1\n"
                "    if mode == MODE_NESTED:\n"
                "        return 2\n"
                "    raise ValueError(mode)\n"
            ),
        }, [DispatchExhaustivenessRule()])
        assert len(findings) == 1
        assert "missing: agile" in findings[0].message


class TestLayering:
    def test_upward_import_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "mem/pager.py": "from repro.vmm import vmm\n",
            "vmm/vmm.py": "x = 1\n",
        }, [LayeringRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO501"
        assert "layer violation" in findings[0].message

    def test_relative_upward_import_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "mem/pager.py": "from ..vmm import vmm\n",
            "vmm/vmm.py": "x = 1\n",
        }, [LayeringRule()])
        assert len(findings) == 1
        assert "repro.vmm.vmm" in findings[0].message

    def test_downward_and_lateral_imports_are_clean(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "vmm/vmm.py": (
                "from repro.common import config\n"
                "from repro.mem import pte\n"
                "from . import traps\n"
            ),
            "vmm/traps.py": "x = 1\n",
            "common/config.py": "x = 1\n",
            "mem/pte.py": "x = 1\n",
        }, [LayeringRule()])
        assert findings == []

    def test_tracer_port_inversion_is_allowed(self, tmp_path):
        # obs.tracer is declared layer 0 (a port): core may import it.
        findings = flow_lint(tmp_path, {
            "core/machine.py": "from repro.obs.tracer import NullTracer\n",
            "obs/tracer.py": "class NullTracer:\n    pass\n",
        }, [LayeringRule()])
        assert findings == []


class TestConfigKeys:
    def test_dead_field_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "common/config.py": (
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class CostModel:\n"
                "    cycles_used: int = 1\n"
                "    cycles_dead: int = 0\n"
            ),
            "core/machine.py": (
                "def charge(cost):\n"
                "    return cost.cycles_used\n"
            ),
        }, [ConfigKeysRule()])
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO502"
        assert "cycles_dead" in findings[0].message

    def test_phantom_override_key_fires_once(self, tmp_path):
        findings = flow_lint(tmp_path, {
            "common/config.py": (
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class PWCConfig:\n"
                "    enabled: bool = True\n"
                "@dataclass\n"
                "class MachineConfig:\n"
                "    pwc: PWCConfig = None\n"
            ),
            "runner/sweep.py": (
                "def cells(cfg):\n"
                "    if cfg.pwc.enabled:\n"
                "        return {\"pwc.nope\": False}\n"
                "    return {\"pwc.enabled\": False}\n"
            ),
        }, [ConfigKeysRule()])
        assert len(findings) == 1
        assert "pwc.nope" in findings[0].message
        assert findings[0].path.endswith("runner/sweep.py")


class TestCallGraph:
    """Direct checks of the analysis the rules share."""

    def _program(self, tmp_path, sources):
        import ast as ast_mod

        from repro.lint.engine import SourceFile, _iter_python_files

        flow_lint(tmp_path, sources, [])
        files = []
        for path in _iter_python_files([str(tmp_path / "repro")]):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            files.append(SourceFile(path, source, ast_mod.parse(source)))
        return build_program(files)

    def test_aliased_and_relative_calls_resolve(self, tmp_path):
        program = self._program(tmp_path, {
            "vmm/traps.py": "def charge(kind):\n    return 1\n",
            "vmm/vmm.py": (
                "from . import traps as T\n"
                "def handle():\n"
                "    return T.charge(\"x\")\n"
            ),
        })
        info = program.functions["repro.vmm.vmm.handle"]
        assert [c.target for c in info.calls] == ["repro.vmm.traps.charge"]

    def test_name_match_is_marked_ambiguous(self, tmp_path):
        program = self._program(tmp_path, {
            "vmm/a.py": "class A:\n    def tick(self):\n        pass\n",
            "vmm/b.py": "class B:\n    def tick(self):\n        pass\n",
            "core/m.py": (
                "def drive(policy):\n"
                "    policy.tick()\n"
            ),
        })
        info = program.functions["repro.core.m.drive"]
        assert len(info.calls) == 1
        assert info.calls[0].ambiguous
        assert info.calls[0].target is None
        assert set(info.calls[0].candidates) == {
            "repro.vmm.a.A.tick", "repro.vmm.b.B.tick"}


class TestImportAliasResolution:
    def test_relative_import_resolves_against_package(self):
        import ast as ast_mod
        tree = ast_mod.parse(
            "from ..common.config import MachineConfig\n"
            "from . import traps as T\n"
        )
        aliases = _import_aliases(tree, package="repro.vmm")
        assert aliases["MachineConfig"] == "repro.common.config.MachineConfig"
        assert aliases["T"] == "repro.vmm.traps"

    def test_relative_import_without_package_is_skipped(self):
        import ast as ast_mod
        tree = ast_mod.parse("from ..common import config\n")
        assert _import_aliases(tree, package=None) == {}
