"""The lint result cache: correctness (cached ≡ cold) and speed.

The differential tests render the same tree cold and warm and require
byte-identical output — text and JSON, findings and suppression audit.
The speed test is the PR's acceptance criterion: an unchanged tree must
lint at least 5× faster warm than cold.
"""

import glob
import io
import os
import time

import repro
from repro.lint.cache import LintCache
from repro.lint.runner import run_lint

BAD = "def f(a=[]):\n    return a\n"
SUPPRESSED = "def g(b=[]):  # repro: noqa[REPRO102]\n    return b\n"


def _run(paths, cache_dir, fmt="text", audit=False, deep=False):
    out = io.StringIO()
    err = io.StringIO()
    rc = run_lint(paths, fmt=fmt, out=out, err=err, deep=deep,
                  cache_dir=cache_dir, audit_suppressions=audit)
    assert err.getvalue() == ""
    return rc, out.getvalue()


class TestDifferential:
    def test_warm_text_output_is_byte_identical(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "bad.py").write_text(BAD)
        (tree / "quiet.py").write_text(SUPPRESSED)
        cache_dir = str(tmp_path / "cache")
        rc_cold, cold = _run([str(tree)], cache_dir, audit=True)
        rc_warm, warm = _run([str(tree)], cache_dir, audit=True)
        assert rc_cold == rc_warm == 1
        assert warm == cold
        assert "mutable-default" in cold
        assert "suppresses" in cold  # the audit round-tripped too

    def test_warm_json_output_is_byte_identical(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "bad.py").write_text(BAD)
        cache_dir = str(tmp_path / "cache")
        rc_cold, cold = _run([str(tree)], cache_dir, fmt="json")
        rc_warm, warm = _run([str(tree)], cache_dir, fmt="json")
        assert rc_cold == rc_warm == 1
        assert warm == cold

    def test_editing_a_file_invalidates(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "mod.py").write_text("x = 1\n")
        cache_dir = str(tmp_path / "cache")
        rc, _ = _run([str(tree)], cache_dir)
        assert rc == 0
        (tree / "mod.py").write_text(BAD)
        rc, text = _run([str(tree)], cache_dir)
        assert rc == 1
        assert "mutable-default" in text

    def test_corrupted_cache_entry_is_a_miss(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "bad.py").write_text(BAD)
        cache_dir = str(tmp_path / "cache")
        _rc, cold = _run([str(tree)], cache_dir)
        entries = glob.glob(os.path.join(cache_dir, "lint-*.json"))
        assert len(entries) == 1
        with open(entries[0], "w") as handle:
            handle.write("{not json")
        rc, text = _run([str(tree)], cache_dir)
        assert rc == 1
        assert text == cold

    def test_rule_set_is_part_of_the_key(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "mod.py").write_text("x = 1\n")
        cache = LintCache(str(tmp_path / "cache"))
        hashes = [("mod.py", "abc")]
        assert (cache.key_for(hashes, ["REPRO101"])
                != cache.key_for(hashes, ["REPRO101", "REPRO401"]))
        assert (cache.key_for(hashes, ["REPRO101"])
                == cache.key_for(hashes, ["REPRO101"]))


class TestSpeed:
    def test_warm_deep_lint_is_5x_faster_than_cold(self, tmp_path):
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        cache_dir = str(tmp_path / "cache")
        start = time.perf_counter()
        rc_cold, cold = _run([package_dir], cache_dir, deep=True)
        cold_elapsed = time.perf_counter() - start
        warm_elapsed = []
        for _ in range(3):
            start = time.perf_counter()
            rc_warm, warm = _run([package_dir], cache_dir, deep=True)
            warm_elapsed.append(time.perf_counter() - start)
        assert rc_cold == rc_warm == 0
        assert warm == cold
        assert min(warm_elapsed) * 5 <= cold_elapsed, (
            "warm %.4fs vs cold %.4fs" % (min(warm_elapsed), cold_elapsed))
