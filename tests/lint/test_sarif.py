"""``--format sarif`` renders a valid minimal SARIF 2.1.0 log.

CI uploads this as an artifact next to the JSON findings; code-scanning
UIs consume it directly, so the shape (tool.driver.rules catalogue,
1-based columns) is pinned here.
"""

import io
import json

from repro.lint.domains.rules import DOMAIN_RULES
from repro.lint.runner import run_lint

MIXED = (
    "from repro.common.addrspace import takes\n"
    "\n"
    "@takes(gpa=\"gpa\", hpa=\"hpa\")\n"
    "def confused(gpa, hpa):\n"
    "    return gpa == hpa\n"
)


def _write_package(tmp_path, sources):
    for relpath, source in sources.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    return tmp_path / "repro"


def _sarif_run(package):
    out, err = io.StringIO(), io.StringIO()
    code = run_lint(paths=[str(package)], fmt="sarif", out=out, err=err,
                    rules=DOMAIN_RULES, deep=True)
    assert err.getvalue() == ""
    return code, json.loads(out.getvalue())


def test_findings_render_as_sarif(tmp_path):
    package = _write_package(tmp_path, {"core/checks.py": MIXED})
    code, payload = _sarif_run(package)
    assert code == 1
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    [run] = payload["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    [result] = run["results"]
    assert result["ruleId"] == "REPRO601"
    assert result["level"] == "error"
    assert "cross-domain comparison" in result["message"]["text"]
    [location] = result["locations"]
    region = location["physicalLocation"]["region"]
    assert region["startLine"] == 5
    assert region["startColumn"] == 12  # 0-based col 11, SARIF is 1-based
    uri = location["physicalLocation"]["artifactLocation"]["uri"]
    assert uri.endswith("repro/core/checks.py")


def test_rule_catalogue_covers_parse_errors_and_configured_rules(tmp_path):
    package = _write_package(tmp_path, {"core/checks.py": MIXED})
    _code, payload = _sarif_run(package)
    rule_ids = {rule["id"]
                for rule in payload["runs"][0]["tool"]["driver"]["rules"]}
    assert "REPRO001" in rule_ids  # syntax errors are reportable
    assert {"REPRO601", "REPRO602", "REPRO603", "REPRO604",
            "REPRO605"} <= rule_ids


def test_clean_tree_renders_empty_results_and_exits_zero(tmp_path):
    package = _write_package(tmp_path, {"core/fine.py": "VALUE = 1\n"})
    code, payload = _sarif_run(package)
    assert code == 0
    assert payload["runs"][0]["results"] == []
