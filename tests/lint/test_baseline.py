"""The ``--baseline`` ratchet: known findings are tolerated, new ones
fail, and ``--write-baseline`` records the current state.

The committed repo baseline (``lint-baseline.json``) is *empty* — the
annotated tree lints clean — so the ratchet exists purely to keep it
that way: any new REPRO6xx finding fails CI even if someone tries to
grandfather it in by hand-editing the baseline (the key includes the
message text, so stale entries simply never match).
"""

import io
import json
import os

from repro.lint.domains.rules import DOMAIN_RULES
from repro.lint.runner import load_baseline, run_lint

MIXED = (
    "from repro.common.addrspace import takes\n"
    "\n"
    "@takes(gpa=\"gpa\", hpa=\"hpa\")\n"
    "def confused(gpa, hpa):\n"
    "    return gpa == hpa\n"
)

DOUBLE_SHIFT = (
    "from repro.common.addrspace import takes\n"
    "\n"
    "@takes(gfn=\"gfn\")\n"
    "def twice(gfn):\n"
    "    return gfn >> 12\n"
)


def _write_package(tmp_path, sources):
    for relpath, source in sources.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    return tmp_path / "repro"


def _run(package, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    code = run_lint(paths=[str(package)], out=out, err=err,
                    rules=DOMAIN_RULES, deep=True, **kwargs)
    return code, out.getvalue(), err.getvalue()


def test_write_baseline_records_current_findings(tmp_path):
    package = _write_package(tmp_path, {"core/checks.py": MIXED})
    baseline = tmp_path / "baseline.json"
    code, out, err = _run(package, baseline=str(baseline),
                          write_baseline=True)
    assert code == 0 and err == ""
    assert "recorded 1 finding" in out
    payload = json.loads(baseline.read_text())
    assert payload["schema"] == 1
    [entry] = payload["findings"]
    assert entry["rule_id"] == "REPRO601"
    assert entry["path"] == "repro/core/checks.py"  # checkout-relative


def test_baselined_findings_are_tolerated(tmp_path):
    package = _write_package(tmp_path, {"core/checks.py": MIXED})
    baseline = tmp_path / "baseline.json"
    assert _run(package, baseline=str(baseline),
                write_baseline=True)[0] == 0
    code, out, _err = _run(package, baseline=str(baseline))
    assert code == 0
    assert "clean (1 baselined)" in out


def test_new_findings_still_fail(tmp_path):
    package = _write_package(tmp_path, {"core/checks.py": MIXED})
    baseline = tmp_path / "baseline.json"
    assert _run(package, baseline=str(baseline),
                write_baseline=True)[0] == 0
    (package / "core" / "shift.py").write_text(DOUBLE_SHIFT)
    code, out, _err = _run(package, fmt="json", baseline=str(baseline))
    assert code == 1
    payload = json.loads(out)
    assert payload["finding_count"] == 1
    assert payload["baselined_count"] == 1
    assert payload["findings"][0]["rule_id"] == "REPRO604"


def test_missing_baseline_is_a_usage_error(tmp_path):
    package = _write_package(tmp_path, {"core/checks.py": MIXED})
    code, _out, err = _run(package,
                           baseline=str(tmp_path / "nope.json"))
    assert code == 2
    assert "cannot read baseline" in err


def test_malformed_baseline_is_a_usage_error(tmp_path):
    package = _write_package(tmp_path, {"core/checks.py": MIXED})
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"schema": 99, "findings": []}\n')
    code, _out, err = _run(package, baseline=str(baseline))
    assert code == 2
    assert "unsupported baseline schema" in err


def test_write_baseline_requires_baseline_path(tmp_path):
    package = _write_package(tmp_path, {"core/checks.py": MIXED})
    code, _out, err = _run(package, write_baseline=True)
    assert code == 2
    assert "--write-baseline requires --baseline" in err


def test_committed_repo_baseline_is_empty():
    """The shipped baseline tolerates nothing: the tree must stay clean."""
    repo_root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             os.pardir, os.pardir)
    path = os.path.join(repo_root, "lint-baseline.json")
    assert os.path.isfile(path)
    assert load_baseline(path) == set()
