"""Every lint run reads and parses each file exactly once.

Before PR 6 a cached ``repro lint`` run read every file twice: once to
hash it for the cache key and once more inside the engine. The runner
now reads sources once (:func:`repro.lint.engine.read_sources`), hashes
the in-memory text, and hands the same strings to the engine. These
tests count ``open`` and ``ast.parse`` calls to pin that down.
"""

import ast
import builtins
import io
import json

from repro.lint.domains.rules import DOMAIN_RULES
from repro.lint.runner import run_lint

SOURCES = {
    "core/one.py": (
        "from repro.common.addrspace import takes\n"
        "\n"
        "@takes(gpa=\"gpa\")\n"
        "def touch(gpa):\n"
        "    return gpa\n"
    ),
    "core/two.py": "VALUE = 2\n",
    "mem/three.py": "VALUE = 3\n",
}


def _write_package(tmp_path):
    for relpath, source in SOURCES.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    return tmp_path / "repro"


def test_cold_run_reads_and_parses_each_file_once(tmp_path, monkeypatch):
    package = _write_package(tmp_path)
    parse_counts = {}
    real_parse = ast.parse

    def counting_parse(source, filename="<unknown>", *args, **kwargs):
        name = str(filename)
        if name.startswith(str(package)) and name.endswith(".py"):
            parse_counts[name] = parse_counts.get(name, 0) + 1
        return real_parse(source, filename, *args, **kwargs)

    open_counts = {}
    real_open = builtins.open

    def counting_open(file, *args, **kwargs):
        name = str(file)
        if name.startswith(str(package)) and name.endswith(".py"):
            open_counts[name] = open_counts.get(name, 0) + 1
        return real_open(file, *args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    monkeypatch.setattr(builtins, "open", counting_open)

    out = io.StringIO()
    code = run_lint(paths=[str(package)], fmt="json", out=out, err=out,
                    rules=DOMAIN_RULES, deep=True,
                    cache_dir=str(tmp_path / "cache"))
    assert code == 0, out.getvalue()
    checked = json.loads(out.getvalue())["checked_files"]
    assert checked == len(parse_counts) == len(open_counts)
    assert set(parse_counts.values()) == {1}, parse_counts
    assert set(open_counts.values()) == {1}, open_counts


def test_warm_run_reads_once_for_hashing_and_never_parses(
        tmp_path, monkeypatch):
    package = _write_package(tmp_path)
    cache_dir = str(tmp_path / "cache")
    assert run_lint(paths=[str(package)], fmt="json", out=io.StringIO(),
                    err=io.StringIO(), rules=DOMAIN_RULES, deep=True,
                    cache_dir=cache_dir) == 0

    parse_counts = {}
    real_parse = ast.parse

    def counting_parse(source, filename="<unknown>", *args, **kwargs):
        name = str(filename)
        if name.startswith(str(package)) and name.endswith(".py"):
            parse_counts[name] = parse_counts.get(name, 0) + 1
        return real_parse(source, filename, *args, **kwargs)

    open_counts = {}
    real_open = builtins.open

    def counting_open(file, *args, **kwargs):
        name = str(file)
        if name.startswith(str(package)) and name.endswith(".py"):
            open_counts[name] = open_counts.get(name, 0) + 1
        return real_open(file, *args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    monkeypatch.setattr(builtins, "open", counting_open)

    out = io.StringIO()
    code = run_lint(paths=[str(package)], fmt="json", out=out, err=out,
                    rules=DOMAIN_RULES, deep=True, cache_dir=cache_dir)
    assert code == 0, out.getvalue()
    # The warm path still hashes every file for the cache key (one read
    # each) but reconstructs the result without parsing a single AST.
    assert set(open_counts.values()) == {1}, open_counts
    assert parse_counts == {}, parse_counts
