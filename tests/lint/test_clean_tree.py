"""The shipped tree must lint clean — this is what makes the lint
suite load-bearing: any rule violation introduced in ``src/repro``
fails tier-1, not just the optional ``python -m repro lint`` run."""

import os

import repro
from repro.lint.engine import LintEngine
from repro.lint.rules import DEFAULT_RULES


def test_repro_package_lints_clean():
    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    engine = LintEngine(DEFAULT_RULES)
    findings, checked = engine.run([package_dir])
    assert checked > 20  # sanity: the walk actually found the package
    assert findings == [], "\n".join(f.format() for f in findings)
