"""The shipped tree must lint clean — this is what makes the lint
suite load-bearing: any rule violation introduced in ``src/repro``
fails tier-1, not just the optional ``python -m repro lint`` run.

The deep variant runs the whole-program rules too, and the mutation
test proves the effect system is live: stripping one ``@trap_handler``
annotation from a VMM entry point must produce a REPRO401 finding.
"""

import os
import shutil

import repro
from repro.lint import DEEP_RULES
from repro.lint.engine import LintEngine
from repro.lint.rules import DEFAULT_RULES


def _package_dir():
    return os.path.dirname(os.path.abspath(repro.__file__))


def test_repro_package_lints_clean():
    engine = LintEngine(DEFAULT_RULES)
    findings, checked = engine.run([_package_dir()])
    assert checked > 20  # sanity: the walk actually found the package
    assert findings == [], "\n".join(f.format() for f in findings)


def test_repro_package_deep_lints_clean():
    engine = LintEngine(DEEP_RULES)
    findings, checked = engine.run([_package_dir()])
    assert checked > 20
    assert findings == [], "\n".join(f.format() for f in findings)


def test_stripping_a_trap_handler_fails_deep_lint(tmp_path):
    """The acceptance mutation: remove one @trap_handler → REPRO401."""
    mutant = tmp_path / "repro"
    shutil.copytree(_package_dir(), mutant,
                    ignore=shutil.ignore_patterns("__pycache__"))
    vmm_path = mutant / "vmm" / "vmm.py"
    source = vmm_path.read_text()
    needle = "    @trap_handler\n    def handle_shadow_fault"
    assert needle in source  # the annotation this test depends on
    vmm_path.write_text(source.replace(
        needle, "    def handle_shadow_fault"))
    findings, _checked = LintEngine(DEEP_RULES).run([str(mutant)])
    assert [f.rule_id for f in findings] == ["REPRO401"]
    assert "handle_shadow_fault" in findings[0].message


def test_benchmarks_tree_lints_clean():
    """Every shipped bench file must register with the harness (REPRO302)
    and stay inside the benchmarks/ exemption envelope."""
    bench_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "..", "..", "benchmarks")
    engine = LintEngine(DEFAULT_RULES)
    findings, checked = engine.run([bench_dir])
    assert checked >= 16  # all bench_*.py plus the shared helpers
    assert findings == [], "\n".join(f.format() for f in findings)
