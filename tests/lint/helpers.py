"""Shared fixture plumbing for the lint tests."""

from repro.lint.engine import LintEngine
from repro.lint.rules import DEFAULT_RULES


def lint_sources(tmp_path, sources, rules=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint the tree."""
    for relpath, source in sources.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    engine = LintEngine(DEFAULT_RULES if rules is None else rules)
    findings, _checked = engine.run([str(tmp_path)])
    return findings


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})
