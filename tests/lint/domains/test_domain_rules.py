"""Fixture tests for the address-domain rules (REPRO601–REPRO605).

Same discipline as the flow fixtures: every positive fixture makes its
rule fire *exactly once*, the negative variant shows the same shape with
the contract satisfied, and a ``# repro: noqa[...]`` variant proves the
per-line suppression machinery covers the domain rules too.

Fixtures are written as a fake ``repro`` package so module naming works;
they deliberately avoid the root-module tails (``hw/walker.py``,
``hw/mmu.py``) and the coverage-required modules (``vmm/hostpt.py``)
except in the REPRO605 tests, which exercise exactly those checks.
"""

from repro.lint.domains.rules import (
    DOMAIN_RULES,
    CrossDomainArithmeticRule,
    FrameByteConfusionRule,
    TranslatorClosureRule,
    UntranslatedGuestAddressRule,
    WrongDomainArgumentRule,
)
from repro.lint.engine import LintEngine


def domain_lint(tmp_path, sources, rules=DOMAIN_RULES):
    """Write ``{relpath: source}`` as a fake ``repro`` package and lint it."""
    for relpath, source in sources.items():
        path = tmp_path / "repro" / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    findings, _checked = LintEngine(rules).run([str(tmp_path / "repro")])
    return findings


class TestCrossDomainArithmetic:
    MIXED = (
        "from repro.common.addrspace import takes\n"
        "\n"
        "@takes(gpa=\"gpa\", hpa=\"hpa\")\n"
        "def confused(gpa, hpa):\n"
        "    return gpa == hpa\n"
    )

    def test_gpa_vs_hpa_comparison_fires_once(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/checks.py": self.MIXED},
                               [CrossDomainArithmeticRule()])
        assert [f.rule_id for f in findings] == ["REPRO601"]
        assert "cross-domain comparison" in findings[0].message
        assert "gpa" in findings[0].message
        assert "hpa" in findings[0].message

    def test_same_domain_comparison_is_clean(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/checks.py": (
            "from repro.common.addrspace import takes\n"
            "\n"
            "@takes(a=\"gpa\", b=\"gpa\")\n"
            "def fine(a, b):\n"
            "    return a == b\n"
        )}, [CrossDomainArithmeticRule()])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        suppressed = self.MIXED.replace(
            "return gpa == hpa",
            "return gpa == hpa  # repro: noqa[REPRO601]")
        findings = domain_lint(tmp_path, {"core/checks.py": suppressed},
                               [CrossDomainArithmeticRule()])
        assert findings == []

    def test_cross_domain_addition_fires(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/checks.py": (
            "from repro.common.addrspace import takes\n"
            "\n"
            "@takes(gva=\"gva\", hpa=\"hpa\")\n"
            "def added(gva, hpa):\n"
            "    return gva + hpa\n"
        )}, [CrossDomainArithmeticRule()])
        assert [f.rule_id for f in findings] == ["REPRO601"]


class TestWrongDomainArgument:
    SWAPPED = (
        "from repro.common.addrspace import takes\n"
        "\n"
        "@takes(hfn=\"hfn\")\n"
        "def host_side(hfn):\n"
        "    return hfn\n"
        "\n"
        "@takes(gfn=\"gfn\")\n"
        "def caller(gfn):\n"
        "    return host_side(gfn)\n"
    )

    def test_gfn_passed_where_hfn_declared_fires_once(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/frames.py": self.SWAPPED},
                               [WrongDomainArgumentRule()])
        assert [f.rule_id for f in findings] == ["REPRO602"]
        assert "hfn" in findings[0].message
        assert "gfn" in findings[0].message

    def test_matching_domain_is_clean(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/frames.py": (
            "from repro.common.addrspace import takes\n"
            "\n"
            "@takes(hfn=\"hfn\")\n"
            "def host_side(hfn):\n"
            "    return hfn\n"
            "\n"
            "@takes(frame=\"hfn\")\n"
            "def caller(frame):\n"
            "    return host_side(frame)\n"
        )}, [WrongDomainArgumentRule()])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        suppressed = self.SWAPPED.replace(
            "return host_side(gfn)",
            "return host_side(gfn)  # repro: noqa[REPRO602]")
        findings = domain_lint(tmp_path, {"core/frames.py": suppressed},
                               [WrongDomainArgumentRule()])
        assert findings == []


class TestUntranslatedGuestAddress:
    LEAKED = (
        "from repro.common.addrspace import takes\n"
        "\n"
        "class Device:\n"
        "    @takes(gfn=\"gfn\")\n"
        "    def dma_read(self, gfn):\n"
        "        return self.host_mem.read(gfn)\n"
    )

    def test_guest_frame_reaching_host_ram_fires_once(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/device.py": self.LEAKED},
                               [UntranslatedGuestAddressRule()])
        assert [f.rule_id for f in findings] == ["REPRO603"]
        assert "host_mem.read" in findings[0].message
        assert "translator" in findings[0].message

    def test_host_frame_reaching_host_ram_is_clean(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/device.py": (
            "from repro.common.addrspace import takes\n"
            "\n"
            "class Device:\n"
            "    @takes(hfn=\"hfn\")\n"
            "    def dma_read(self, hfn):\n"
            "        return self.host_mem.read(hfn)\n"
        )}, [UntranslatedGuestAddressRule()])
        assert findings == []

    def test_guest_frame_reaching_guest_ram_is_clean(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/device.py": (
            "from repro.common.addrspace import takes\n"
            "\n"
            "class Device:\n"
            "    @takes(gfn=\"gfn\")\n"
            "    def read(self, gfn):\n"
            "        return self.guest_mem.read(gfn)\n"
        )}, [UntranslatedGuestAddressRule()])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        suppressed = self.LEAKED.replace(
            "return self.host_mem.read(gfn)",
            "return self.host_mem.read(gfn)  # repro: noqa[REPRO603]")
        findings = domain_lint(tmp_path, {"core/device.py": suppressed},
                               [UntranslatedGuestAddressRule()])
        assert findings == []


class TestFrameByteConfusion:
    DOUBLE_SHIFT = (
        "from repro.common.addrspace import takes\n"
        "\n"
        "@takes(gfn=\"gfn\")\n"
        "def twice(gfn):\n"
        "    return gfn >> 12\n"
    )

    def test_page_shifting_a_frame_fires_once(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/shift.py": self.DOUBLE_SHIFT},
                               [FrameByteConfusionRule()])
        assert [f.rule_id for f in findings] == ["REPRO604"]
        assert "page-shifting" in findings[0].message

    def test_page_shifting_an_address_is_clean(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/shift.py": (
            "from repro.common.addrspace import takes\n"
            "\n"
            "@takes(gpa=\"gpa\")\n"
            "def once(gpa):\n"
            "    return gpa >> 12\n"
        )}, [FrameByteConfusionRule()])
        assert findings == []

    def test_byte_address_indexing_ram_fires(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/ram.py": (
            "from repro.common.addrspace import takes\n"
            "\n"
            "class Device:\n"
            "    @takes(gpa=\"gpa\")\n"
            "    def read(self, gpa):\n"
            "        return self.guest_mem.read(gpa)\n"
        )}, [FrameByteConfusionRule()])
        assert [f.rule_id for f in findings] == ["REPRO604"]
        assert "byte address" in findings[0].message

    def test_noqa_suppresses(self, tmp_path):
        suppressed = self.DOUBLE_SHIFT.replace(
            "return gfn >> 12",
            "return gfn >> 12  # repro: noqa[REPRO604]")
        findings = domain_lint(tmp_path, {"core/shift.py": suppressed},
                               [FrameByteConfusionRule()])
        assert findings == []


class TestTranslatorClosure:
    BACKWARDS = (
        "from repro.common.addrspace import takes, translates\n"
        "\n"
        "@translates(\"hpa\", \"gpa\")\n"
        "@takes(hpa=\"hpa\")\n"
        "def backwards(hpa):\n"
        "    return hpa\n"
    )

    def test_non_paper_edge_fires_once(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/reverse.py": self.BACKWARDS},
                               [TranslatorClosureRule()])
        assert [f.rule_id for f in findings] == ["REPRO605"]
        assert "not a paper-model edge" in findings[0].message

    def test_paper_edge_is_clean(self, tmp_path):
        findings = domain_lint(tmp_path, {"core/forward.py": (
            "from repro.common.addrspace import takes, translates\n"
            "\n"
            "@translates(\"gpa\", \"hpa\")\n"
            "@takes(gpa=\"gpa\")\n"
            "def forward(gpa):\n"
            "    return gpa\n"
        )}, [TranslatorClosureRule()])
        assert findings == []

    def test_walker_module_without_gfn_translator_fires(self, tmp_path):
        """Coverage: a ``hw/walker.py`` module must declare the
        gfn→hfn step (anchored at line 1 of the module)."""
        findings = domain_lint(tmp_path, {"hw/walker.py": (
            "class Walker:\n"
            "    def walk(self, proc, va):\n"
            "        return None\n"
        )}, [TranslatorClosureRule()])
        assert [f.rule_id for f in findings] == ["REPRO605"]
        assert "repro.hw.walker" in findings[0].message
        assert "@translates" in findings[0].message
        assert findings[0].line == 1

    def test_walker_module_with_gfn_translator_is_clean(self, tmp_path):
        findings = domain_lint(tmp_path, {"hw/walker.py": (
            "from repro.common.addrspace import returns, takes, translates\n"
            "\n"
            "class Walker:\n"
            "    @translates(\"gfn\", \"hfn\")\n"
            "    @takes(gfn=\"gfn\")\n"
            "    @returns(\"hfn\")\n"
            "    def nested(self, gfn):\n"
            "        return gfn\n"
        )}, [TranslatorClosureRule()])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_noqa_on_line_one_suppresses_coverage(self, tmp_path):
        findings = domain_lint(tmp_path, {"hw/walker.py": (
            "# repro: noqa[REPRO605]\n"
            "class Walker:\n"
            "    def walk(self, proc, va):\n"
            "        return None\n"
        )}, [TranslatorClosureRule()])
        assert findings == []


class TestWholeRuleSet:
    def test_mixed_fixture_reports_each_rule_once(self, tmp_path):
        """All five rules coexist on one tree without double-reporting."""
        findings = domain_lint(tmp_path, {
            "core/checks.py": TestCrossDomainArithmetic.MIXED,
            "core/frames.py": TestWrongDomainArgument.SWAPPED,
            "core/shift.py": TestFrameByteConfusion.DOUBLE_SHIFT,
        })
        assert sorted(f.rule_id for f in findings) == [
            "REPRO601", "REPRO602", "REPRO604"]
