"""Mutation acceptance tests: the domain analysis is live on the real
tree.

Each test copies the installed ``repro`` package, introduces one
realistic address-space bug, and proves ``repro check`` (the deep rule
set) catches it with the expected REPRO6xx finding — the same idiom as
the ``@trap_handler``-stripping mutation in ``test_clean_tree.py``.
"""

import os
import shutil

import repro
from repro.lint import DEEP_RULES
from repro.lint.engine import LintEngine


def _package_dir():
    return os.path.dirname(os.path.abspath(repro.__file__))


def _mutate(tmp_path, relpath, needle, replacement):
    mutant = tmp_path / "repro"
    shutil.copytree(_package_dir(), mutant,
                    ignore=shutil.ignore_patterns("__pycache__"))
    target = mutant.joinpath(*relpath.split("/"))
    source = target.read_text()
    assert needle in source  # the code this mutation depends on
    target.write_text(source.replace(needle, replacement))
    findings, _checked = LintEngine(DEEP_RULES).run([str(mutant)])
    return findings


def test_swapping_gpa_and_hptr_in_walker_fails_check(tmp_path):
    """The acceptance mutation: pass host_walk's arguments in the wrong
    order (host root pointer where the guest-physical address belongs)
    and the wrong-domain-argument rule must fire."""
    findings = _mutate(
        tmp_path, "hw/walker.py",
        "self.host_walk(gfn << 12, hptr, is_write=is_write, va=va)",
        "self.host_walk(hptr, gfn << 12, is_write=is_write, va=va)")
    assert findings, "swapped gpa/hptr arguments went undetected"
    rule_ids = {f.rule_id for f in findings}
    assert "REPRO602" in rule_ids, "\n".join(f.format() for f in findings)
    assert rule_ids <= {"REPRO602", "REPRO604"}
    swapped = [f for f in findings if f.rule_id == "REPRO602"]
    assert any("host_walk" in f.message for f in swapped)


def test_dropping_translates_from_hostpt_fails_check(tmp_path):
    """The other acceptance mutation: remove the ``@translates`` marker
    from the host page table's gfn→hfn step and translator-closure
    coverage must flag the module."""
    findings = _mutate(
        tmp_path, "vmm/hostpt.py",
        "    @translates(\"gfn\", \"hfn\")\n    @takes(gfn=\"gfn\")",
        "    @takes(gfn=\"gfn\")")
    assert [f.rule_id for f in findings] == ["REPRO605"], \
        "\n".join(f.format() for f in findings)
    assert "repro.vmm.hostpt" in findings[0].message
    assert "gfn" in findings[0].message and "hfn" in findings[0].message
