"""Engine mechanics: discovery, parse errors, suppression, output."""

import io
import json

from repro.cli import main as cli_main
from repro.lint.engine import LintEngine
from repro.lint.rules import DEFAULT_RULES
from repro.lint.runner import list_rules, run_lint

from .helpers import lint_sources

BAD = "def f(a=[]):\n    return a\n"


class TestParseErrors:
    def test_syntax_error_becomes_repro001(self, tmp_path):
        findings = lint_sources(tmp_path, {"broken.py": "def f(:\n"})
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO001"
        assert findings[0].rule_name == "parse-error"
        assert "syntax error" in findings[0].message

    def test_broken_file_does_not_hide_other_files(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "broken.py": "def f(:\n",
            "bad.py": BAD,
        })
        assert {f.rule_id for f in findings} == {"REPRO001", "REPRO102"}


class TestSuppression:
    def test_disable_by_name_id_and_all(self, tmp_path):
        findings = lint_sources(tmp_path, {"s.py": (
            "def f(a=[]):  # lint: disable=mutable-default\n"
            "    return a\n"
            "def g(b=[]):  # lint: disable=REPRO102\n"
            "    return b\n"
            "def h(c=[]):  # lint: disable=all\n"
            "    return c\n"
        )})
        assert findings == []

    def test_wrong_name_does_not_suppress(self, tmp_path):
        findings = lint_sources(tmp_path, {"s.py": (
            "def f(a=[]):  # lint: disable=bare-except\n"
            "    return a\n"
        )})
        assert len(findings) == 1

    def test_suppression_only_covers_its_own_line(self, tmp_path):
        findings = lint_sources(tmp_path, {"s.py": (
            "# lint: disable=all\n"
            "def f(a=[]):\n"
            "    return a\n"
        )})
        assert len(findings) == 1


class TestOutput:
    def test_findings_are_sorted_and_formatted(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "b.py": BAD,
            "a.py": "try:\n    pass\nexcept:\n    pass\n" + BAD,
        })
        keys = [(f.path, f.line, f.col, f.rule_id) for f in findings]
        assert keys == sorted(keys)
        line = findings[0].format()
        assert line.startswith(findings[0].path + ":")
        assert "[bare-except]" in line or "[mutable-default]" in line

    def test_run_lint_json_payload(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD)
        out = io.StringIO()
        rc = run_lint([str(tmp_path)], fmt="json", out=out)
        assert rc == 1
        payload = json.loads(out.getvalue())
        assert payload["checked_files"] == 1
        assert payload["finding_count"] == 1
        finding = payload["findings"][0]
        assert finding["rule_id"] == "REPRO102"
        assert finding["path"].endswith("bad.py")
        assert finding["line"] == 1

    def test_run_lint_text_clean(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        out = io.StringIO()
        rc = run_lint([str(tmp_path)], fmt="text", out=out)
        assert rc == 0
        assert "checked 1 files: clean" in out.getvalue()

    def test_missing_path_is_usage_error(self, tmp_path):
        out = io.StringIO()
        err = io.StringIO()
        rc = run_lint([str(tmp_path / "nope")], out=out, err=err)
        assert rc == 2
        assert "lint:" in err.getvalue()
        assert out.getvalue() == ""

    def test_list_rules_prints_catalogue(self):
        out = io.StringIO()
        assert list_rules(out) == 0
        text = out.getvalue()
        for rule_id in ("REPRO001", "REPRO101", "REPRO102", "REPRO103",
                        "REPRO104", "REPRO201"):
            assert rule_id in text

    def test_non_py_files_are_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("def f(a=[]): pass\n")
        engine = LintEngine(DEFAULT_RULES)
        findings, checked = engine.run([str(tmp_path)])
        assert findings == []
        assert checked == 0


class TestCLI:
    def test_cli_lint_clean_and_dirty(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        out = io.StringIO()
        assert cli_main(["lint", str(tmp_path)], out=out) == 0
        (tmp_path / "bad.py").write_text(BAD)
        out = io.StringIO()
        assert cli_main(["lint", str(tmp_path)], out=out) == 1
        assert "mutable-default" in out.getvalue()

    def test_cli_lint_json(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD)
        out = io.StringIO()
        rc = cli_main(["lint", "--format", "json", str(tmp_path)], out=out)
        assert rc == 1
        payload = json.loads(out.getvalue())
        assert payload["finding_count"] == 1

    def test_cli_list_rules(self):
        out = io.StringIO()
        assert cli_main(["lint", "--list-rules"], out=out) == 0
        assert "trap-accounting" in out.getvalue()
