"""Per-rule positive and negative fixtures for the lint suite."""

from .helpers import lint_sources, rule_ids


class TestUnseededRandom:
    def test_flags_global_random_and_wall_clock(self, tmp_path):
        findings = lint_sources(tmp_path, {"bad.py": (
            "import random\n"
            "import time\n"
            "import numpy as np\n"
            "x = random.randint(0, 4)\n"
            "y = time.time()\n"
            "z = np.random.default_rng()\n"
            "w = np.random.rand(3)\n"
        )})
        assert rule_ids(findings) == ["REPRO101"]
        assert len(findings) == 4
        messages = " | ".join(f.message for f in findings)
        assert "wall-clock" in messages
        assert "without a seed" in messages
        assert "global" in messages

    def test_tracks_import_aliases(self, tmp_path):
        findings = lint_sources(tmp_path, {"bad.py": (
            "from time import perf_counter as pc\n"
            "from numpy.random import default_rng\n"
            "t = pc()\n"
            "r = default_rng()\n"
        )})
        assert len(findings) == 2

    def test_tracks_dotted_module_alias_chains(self, tmp_path):
        # `import x.y as z` binds z to the full dotted path, so both the
        # aliased wall clock and the aliased numpy global state resolve.
        findings = lint_sources(tmp_path, {"bad.py": (
            "import time as clock\n"
            "import numpy.random as nr\n"
            "t = clock.perf_counter()\n"
            "r = nr.rand(3)\n"
        )})
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "time.perf_counter" in messages
        assert "numpy.random.rand" in messages

    def test_seeded_constructions_are_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {"good.py": (
            "import random\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "r2 = random.Random(7)\n"
            "x = rng.integers(0, 10)\n"
        )})
        assert findings == []


class TestFuzzEntropy:
    def test_flags_entropy_sources_inside_fuzz(self, tmp_path):
        findings = lint_sources(tmp_path, {"repro/fuzz/bad.py": (
            "import os\n"
            "import random\n"
            "import secrets\n"
            "import uuid\n"
            "r = random.Random()\n"
            "blob = os.urandom(8)\n"
            "tok = secrets.token_bytes(4)\n"
            "name = uuid.uuid4()\n"
            "sr = random.SystemRandom()\n"
        )})
        ids = [f.rule_id for f in findings]
        assert ids.count("REPRO105") == 5
        messages = " | ".join(f.message for f in findings)
        assert "scenario" in messages and "OS entropy" in messages

    def test_seeded_fuzz_code_is_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {"repro/fuzz/good.py": (
            "import random\n"
            "def generate(seed):\n"
            "    return random.Random(seed).random()\n"
        )})
        assert findings == []

    def test_rule_is_scoped_to_fuzz_tree(self, tmp_path):
        findings = lint_sources(tmp_path, {"repro/core/other.py": (
            "import os\n"
            "blob = os.urandom(8)\n"
        )})
        assert "REPRO105" not in rule_ids(findings)


class TestMutableDefault:
    def test_flags_literals_and_constructors(self, tmp_path):
        findings = lint_sources(tmp_path, {"bad.py": (
            "def f(a, b=[]):\n"
            "    return a, b\n"
            "def g(*, c={}):\n"
            "    return c\n"
            "def h(d=dict()):\n"
            "    return d\n"
            "k = lambda e=set(): e\n"
        )})
        assert rule_ids(findings) == ["REPRO102"]
        assert len(findings) == 4

    def test_immutable_defaults_are_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {"good.py": (
            "def f(a=None, b=(), c=0, d='x'):\n"
            "    return a, b, c, d\n"
        )})
        assert findings == []


class TestBareExcept:
    def test_flags_bare_except(self, tmp_path):
        findings = lint_sources(tmp_path, {"bad.py": (
            "try:\n"
            "    pass\n"
            "except:\n"
            "    pass\n"
        )})
        assert rule_ids(findings) == ["REPRO103"]

    def test_typed_handlers_are_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {"good.py": (
            "try:\n"
            "    pass\n"
            "except (ValueError, KeyError):\n"
            "    pass\n"
            "except Exception:\n"
            "    pass\n"
        )})
        assert findings == []


class TestPolicyHooks:
    def test_missing_hook_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"policies.py": (
            "class BrokenReversionPolicy:\n"
            "    pass\n"
        )})
        assert rule_ids(findings) == ["REPRO104"]
        assert "tick" in findings[0].message

    def test_wrong_arity_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"policies.py": (
            "class SkewedTriggerPolicy:\n"
            "    def note_write(self, manager, now):\n"
            "        return False\n"
        )})
        assert rule_ids(findings) == ["REPRO104"]
        assert "note_write" in findings[0].message

    def test_conforming_policies_are_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {"policies.py": (
            "class GoodReversionPolicy:\n"
            "    def tick(self, manager, hostpt, now):\n"
            "        return 0\n"
            "class GoodTriggerPolicy:\n"
            "    def note_write(self, manager, node_gfn, now):\n"
            "        return False\n"
        )})
        assert findings == []


TRAPS_OK = (
    "PT_WRITE = 'pt_write'\n"
    "HOST_FAULT = 'host_fault'\n"
    "ALL_TRAP_KINDS = (PT_WRITE, HOST_FAULT)\n"
)
VMM_OK = (
    "from vmm import traps as T\n"
    "class V:\n"
    "    def go(self):\n"
    "        self._trap(T.PT_WRITE, self.cost.vmtrap_pt_write_cycles)\n"
    "        self.traps.record(T.HOST_FAULT, self.cost.vmtrap_host_fault_cycles)\n"
)
CONFIG_OK = (
    "class CostConfig:\n"
    "    vmtrap_pt_write_cycles: int = 2200\n"
    "    vmtrap_host_fault_cycles: int = 3500\n"
)


class TestTrapAccounting:
    def test_consistent_taxonomy_is_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "vmm/traps.py": TRAPS_OK,
            "vmm/vmm.py": VMM_OK,
            "common/config.py": CONFIG_OK,
        })
        assert findings == []

    def test_kind_missing_from_tuple_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "vmm/traps.py": (
                "PT_WRITE = 'pt_write'\n"
                "HOST_FAULT = 'host_fault'\n"
                "ALL_TRAP_KINDS = (PT_WRITE,)\n"
            ),
            "vmm/vmm.py": VMM_OK,
            "common/config.py": CONFIG_OK,
        })
        assert any("not a member" in f.message for f in findings)
        assert rule_ids(findings) == ["REPRO201"]

    def test_uncharged_kind_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "vmm/traps.py": TRAPS_OK,
            "vmm/vmm.py": (
                "from vmm import traps as T\n"
                "class V:\n"
                "    def go(self):\n"
                "        self._trap(T.PT_WRITE, self.cost.vmtrap_pt_write_cycles)\n"
                "        kinds = [T.HOST_FAULT]\n"
                "        cost = self.cost.vmtrap_host_fault_cycles\n"
            ),
            "common/config.py": CONFIG_OK,
        })
        assert any("never charged" in f.message for f in findings)

    def test_unused_cost_field_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "vmm/traps.py": TRAPS_OK,
            "vmm/vmm.py": VMM_OK,
            "common/config.py": CONFIG_OK
            + "    vmtrap_orphan_cycles: int = 1\n",
        })
        assert any("vmtrap_orphan_cycles" in f.message for f in findings)

    def test_dead_taxonomy_entry_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "vmm/traps.py": TRAPS_OK + "GHOST = 'ghost'\n",
            "vmm/vmm.py": VMM_OK,
            "common/config.py": CONFIG_OK,
        })
        assert any("GHOST" in f.message and "never referenced" in f.message
                   for f in findings)

    def test_no_traps_module_means_no_findings(self, tmp_path):
        findings = lint_sources(tmp_path, {"plain.py": "x = 1\n"})
        assert findings == []


class TestBarePrint:
    def test_flags_bare_print_in_library_code(self, tmp_path):
        findings = lint_sources(tmp_path, {"repro/obs/tracer.py": (
            "def dump(events):\n"
            "    print(len(events))\n"
        )})
        assert rule_ids(findings) == ["REPRO301"]
        assert "stdout" in findings[0].message

    def test_explicit_stream_is_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {"repro/obs/exporters.py": (
            "def dump(events, out):\n"
            "    print(len(events), file=out)\n"
        )})
        assert findings == []

    def test_cli_and_tables_are_exempt(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "repro/cli.py": "print('usage: repro <command>')\n",
            "repro/analysis/tables.py": "print('Table I')\n",
        })
        assert findings == []

    def test_shadowed_print_attribute_is_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {"repro/runner/sweep.py": (
            "class Reporter:\n"
            "    def emit(self, msg):\n"
            "        self.printer.print(msg)\n"
        )})
        assert findings == []


class TestBenchmarksExemptions:
    def test_benchmarks_may_read_the_wall_clock(self, tmp_path):
        # Timing harnesses are the one place wall-clock reads are the
        # point; REPRO101 skips benchmarks/ entirely.
        findings = lint_sources(tmp_path, {"benchmarks/bench_x.py": (
            "import time\n"
            "from repro.bench import bench_target\n"
            "@bench_target('x', output='BENCH_x.json')\n"
            "def bench(ctx):\n"
            "    return {'t': time.perf_counter()}\n"
        )})
        assert findings == []

    def test_benchmarks_may_print_bare(self, tmp_path):
        findings = lint_sources(tmp_path, {"benchmarks/_util.py": (
            "def emit(name, text):\n"
            "    print(text)\n"
        )})
        assert findings == []

    def test_src_is_still_covered(self, tmp_path):
        findings = lint_sources(tmp_path, {"repro/core/machine.py": (
            "import time\n"
            "t = time.perf_counter()\n"
            "print(t)\n"
        )})
        assert rule_ids(findings) == ["REPRO101", "REPRO301"]


class TestBenchRegistration:
    def test_unregistered_bench_file_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"benchmarks/bench_orphan.py": (
            "def bench(ctx):\n"
            "    return {}\n"
        )})
        assert rule_ids(findings) == ["REPRO302"]
        assert "registers no target" in findings[0].message

    def test_registered_bench_file_is_clean(self, tmp_path):
        findings = lint_sources(tmp_path, {"benchmarks/bench_good.py": (
            "from repro.bench import bench_target\n"
            "@bench_target('good', output='BENCH_good.json')\n"
            "def bench(ctx):\n"
            "    return {}\n"
        )})
        assert findings == []

    def test_missing_output_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"benchmarks/bench_bad.py": (
            "from repro.bench import bench_target\n"
            "@bench_target('bad')\n"
            "def bench(ctx):\n"
            "    return {}\n"
        )})
        assert rule_ids(findings) == ["REPRO302"]
        assert "no output=" in findings[0].message

    def test_non_literal_output_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"benchmarks/bench_bad.py": (
            "from repro.bench import bench_target\n"
            "NAME = 'BENCH_bad.json'\n"
            "@bench_target('bad', output=NAME)\n"
            "def bench(ctx):\n"
            "    return {}\n"
        )})
        assert rule_ids(findings) == ["REPRO302"]
        assert "string literal" in findings[0].message

    def test_malformed_output_name_is_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"benchmarks/bench_bad.py": (
            "from repro.bench import bench_target\n"
            "@bench_target('bad', output='results-bad.json')\n"
            "def bench(ctx):\n"
            "    return {}\n"
        )})
        assert rule_ids(findings) == ["REPRO302"]
        assert "BENCH_<name>.json" in findings[0].message

    def test_positional_output_argument_is_accepted(self, tmp_path):
        findings = lint_sources(tmp_path, {"benchmarks/bench_pos.py": (
            "from repro.bench import bench_target\n"
            "@bench_target('pos', 'BENCH_pos.json')\n"
            "def bench(ctx):\n"
            "    return {}\n"
        )})
        assert findings == []

    def test_non_bench_files_out_of_scope(self, tmp_path):
        findings = lint_sources(tmp_path, {
            "benchmarks/_util.py": "X = 1\n",
            "benchmarks/conftest.py": "Y = 2\n",
            "repro/bench/registry.py": "Z = 3\n",
        })
        assert findings == []
