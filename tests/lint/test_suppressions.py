"""The ``# repro: noqa[...]`` spelling and the suppression audit."""

import io
import os

import repro
from repro.cli import main as cli_main
from repro.lint.engine import LintEngine
from repro.lint.rules import DEFAULT_RULES
from repro.lint.runner import run_lint

from .helpers import lint_sources

BAD = "def f(a=[]):\n    return a\n"


class TestNoqaSyntax:
    def test_noqa_by_id_name_and_all(self, tmp_path):
        findings = lint_sources(tmp_path, {"s.py": (
            "def f(a=[]):  # repro: noqa[REPRO102]\n"
            "    return a\n"
            "def g(b=[]):  # repro: noqa[mutable-default]\n"
            "    return b\n"
            "def h(c=[]):  # repro: noqa[all]\n"
            "    return c\n"
        )})
        assert findings == []

    def test_noqa_accepts_comma_separated_names(self, tmp_path):
        findings = lint_sources(tmp_path, {"s.py": (
            "def f(a=[]):  # repro: noqa[REPRO101, REPRO102]\n"
            "    return a\n"
        )})
        assert findings == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        findings = lint_sources(tmp_path, {"s.py": (
            "def f(a=[]):  # repro: noqa[REPRO103]\n"
            "    return a\n"
        )})
        assert len(findings) == 1


class TestAudit:
    def test_unused_suppression_fails_the_audit(self, tmp_path):
        (tmp_path / "clean.py").write_text(
            "x = 1  # repro: noqa[REPRO102]\n")
        out = io.StringIO()
        rc = run_lint([str(tmp_path)], out=out, audit_suppressions=True)
        assert rc == 1
        assert "UNUSED" in out.getvalue()
        assert "1 unused suppression" in out.getvalue()

    def test_used_suppression_passes_the_audit(self, tmp_path):
        (tmp_path / "quiet.py").write_text(
            "def f(a=[]):  # repro: noqa[REPRO102]\n"
            "    return a\n")
        out = io.StringIO()
        rc = run_lint([str(tmp_path)], out=out, audit_suppressions=True)
        assert rc == 0
        assert "[used]" in out.getvalue()
        assert "UNUSED" not in out.getvalue()

    def test_without_audit_unused_suppressions_are_tolerated(self, tmp_path):
        (tmp_path / "clean.py").write_text(
            "x = 1  # repro: noqa[REPRO102]\n")
        out = io.StringIO()
        assert run_lint([str(tmp_path)], out=out) == 0

    def test_audit_json_payload_lists_suppressions(self, tmp_path):
        import json

        (tmp_path / "quiet.py").write_text(
            "def f(a=[]):  # repro: noqa[REPRO102]\n"
            "    return a\n")
        out = io.StringIO()
        rc = run_lint([str(tmp_path)], fmt="json", out=out,
                      audit_suppressions=True)
        assert rc == 0
        payload = json.loads(out.getvalue())
        assert payload["unused_suppression_count"] == 0
        assert len(payload["suppressions"]) == 1
        assert payload["suppressions"][0]["used"] is True

    def test_suppressions_survive_unparsable_files(self, tmp_path):
        (tmp_path / "broken.py").write_text(
            "def f(:  # repro: noqa[REPRO102]\n")
        engine = LintEngine(DEFAULT_RULES)
        result = engine.run_detailed([str(tmp_path)])
        assert [f.rule_id for f in result.findings] == ["REPRO001"]
        assert len(result.suppressions) == 1
        assert not result.suppressions[0].used

    def test_shipped_tree_passes_the_audit(self):
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        out = io.StringIO()
        rc = run_lint([package_dir], out=out, deep=True,
                      audit_suppressions=True)
        assert rc == 0, out.getvalue()
        # The two known wall-clock suppressions register as used.
        assert out.getvalue().count("[used]") >= 2


class TestCLI:
    def test_audit_flag_and_check_alias(self, tmp_path):
        (tmp_path / "clean.py").write_text(
            "x = 1  # repro: noqa[REPRO102]\n")
        out = io.StringIO()
        rc = cli_main(["lint", "--no-cache", "--audit-suppressions",
                       str(tmp_path)], out=out)
        assert rc == 1
        out = io.StringIO()
        assert cli_main(["check", "--no-cache", str(tmp_path)], out=out) == 0

    def test_check_runs_the_deep_rules(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "vmm").mkdir(parents=True)
        (pkg / "core").mkdir()
        for init in (pkg, pkg / "vmm", pkg / "core"):
            (init / "__init__.py").write_text("")
        (pkg / "vmm" / "mgr.py").write_text(
            "class M:\n"
            "    @mutates(\"shadow_pt\")\n"
            "    def fill(self):\n"
            "        pass\n")
        (pkg / "core" / "m.py").write_text(
            "class C:\n"
            "    def go(self):\n"
            "        self.m.fill()\n")
        out = io.StringIO()
        assert cli_main(["lint", "--no-cache", str(pkg)], out=out) == 0
        out = io.StringIO()
        rc = cli_main(["check", "--no-cache", str(pkg)], out=out)
        assert rc == 1
        assert "REPRO401" in out.getvalue()
