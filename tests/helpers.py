"""Shared builders for hand-constructed translation setups.

These helpers assemble guest/host/shadow page tables directly (without
the guest kernel or VMM) so hardware-level tests can pin down exact
reference counts and fault behaviour.
"""

from repro.common.params import FOUR_KB, ROOT_LEVEL, pt_index
from repro.hw.walkstats import TranslationContext
from repro.mem.pagetable import PageTable
from repro.mem.physmem import PhysicalMemory
from repro.mem.pte import PTE


class TwoLevelSetup:
    """A guest PT + host PT (+ optional shadow PT) built by hand."""

    def __init__(self, guest_frames=4096, host_frames=8192, page_size=FOUR_KB):
        self.page_size = page_size
        self.guest_mem = PhysicalMemory(guest_frames, "guest")
        self.host_mem = PhysicalMemory(host_frames, "host")
        self.gpt = PageTable(self.guest_mem, "gPT")
        self.hpt = PageTable(self.host_mem, "hPT")
        self.spt = None
        self._host_mapped = set()

    # -- population ---------------------------------------------------------

    def host_map_gfn(self, gfn, writable=True):
        """Back one guest frame with a fresh host frame."""
        if gfn in self._host_mapped:
            return
        hfn = self.host_mem.alloc_frame()
        self.hpt.map(gfn << 12, hfn, writable=writable)
        self._host_mapped.add(gfn)

    def sync_host_for_pt_nodes(self):
        """Ensure every guest PT node frame is host-mapped."""
        for node in self.gpt.iter_nodes():
            self.host_map_gfn(node.frame)

    def map_guest(self, gva, writable=True):
        """Map gva in the guest PT and back everything in the host PT."""
        gfn = self.guest_mem.alloc_data_page()
        self.gpt.map(gva, gfn, self.page_size, writable=writable)
        if self.page_size.leaf_level == 1:
            self.host_map_gfn(gfn)
        else:
            span = 1 << (self.page_size.shift - 12)
            base_hfn = self.host_mem.alloc_contiguous(span)
            self.hpt.map(gfn << 12, base_hfn, self.page_size)
            self._host_mapped.add(gfn)
        self.sync_host_for_pt_nodes()
        return gfn

    def gfn_to_hfn(self, gfn):
        translated = self.hpt.translate(gfn << 12)
        assert translated is not None, "gfn %d not host-mapped" % gfn
        return translated[0]

    # -- shadow construction --------------------------------------------------

    def build_full_shadow(self, writable_from_guest=True):
        """Merge gPT and hPT into a complete shadow table."""
        self.spt = PageTable(self.host_mem, "sPT")
        for gva, gpte, level in self.gpt.iter_leaves():
            hfn = self.gfn_to_hfn(gpte.frame)
            self.spt.map(
                gva,
                hfn,
                self.page_size,
                writable=gpte.writable if writable_from_guest else False,
            )
        return self.spt

    def set_switching(self, gva, switch_below_level):
        """Make the shadow walk for ``gva`` go nested below a level.

        ``switch_below_level`` is the level whose *shadow entry* carries
        the switching bit; the levels below it run nested. E.g. with a
        4-level table, ``switch_below_level=2`` leaves only the leaf
        level nested (8 total refs, Figure 3(b)).
        """
        assert self.spt is not None, "build the shadow table first"
        # Find the guest node serving level switch_below_level - 1.
        gnode = self.gpt.root
        for level in range(ROOT_LEVEL, switch_below_level - 1, -1):
            gpte = gnode.get(pt_index(gva, level))
            assert gpte is not None and gpte.present
            gnode = self.gpt.node_at(gpte.frame)
        # Find the shadow node holding the entry at switch_below_level.
        snode = self.spt.root
        for level in range(ROOT_LEVEL, switch_below_level, -1):
            spte = snode.get(pt_index(gva, level))
            assert spte is not None and spte.present
            snode = self.spt.node_at(spte.frame)
        index = pt_index(gva, switch_below_level)
        snode.set(index, PTE(frame=gnode.frame, switching=True, guest_node=True))

    # -- contexts ----------------------------------------------------------------

    def nested_ctx(self, asid=1):
        return TranslationContext(
            asid=asid, mode="nested",
            gptr=self.gpt.root_frame, hptr=self.hpt.root_frame,
        )

    def shadow_ctx(self, asid=1):
        assert self.spt is not None
        return TranslationContext(
            asid=asid, mode="shadow",
            gptr=self.gpt.root_frame, hptr=self.hpt.root_frame,
            sptr=self.spt.root_frame,
        )

    def agile_ctx(self, asid=1, root_switch=False, fully_nested=False):
        sptr = None if fully_nested else self.spt.root_frame
        return TranslationContext(
            asid=asid, mode="agile",
            gptr=self.gpt.root_frame, hptr=self.hpt.root_frame,
            sptr=sptr, root_switch=root_switch,
        )


def make_native_setup(frames=8192):
    """A single-level (native) page table over one physical memory."""
    mem = PhysicalMemory(frames, "ram")
    table = PageTable(mem, "PT")
    return mem, table


def native_ctx(table, asid=1):
    return TranslationContext(asid=asid, mode="native", root_frame=table.root_frame)
