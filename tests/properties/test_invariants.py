"""Property-based tests (hypothesis) for core invariants.

These pin down the invariants DESIGN.md §5 calls out:

* address arithmetic round-trips,
* the frame allocator never double-allocates,
* the page table agrees with a reference dict model under arbitrary
  map/unmap/protect sequences,
* the TLB never returns stale translations,
* the agile walk cost law refs = 4 + 4d,
* shadow coherence: after arbitrary guest activity, every mapped VA
  translates identically through the shadow path and through the
  composed guest+host tables.
"""

from hypothesis import given, settings, strategies as st

from repro.common.params import (
    LEVEL_BITS,
    PAGE_SHIFT,
    VA_LIMIT,
    level_shift,
    pt_index,
)
from repro.mem.pagetable import PageTable
from repro.mem.physmem import FrameAllocator, PhysicalMemory

vas = st.integers(min_value=0, max_value=VA_LIMIT - 1)
small_vpns = st.integers(min_value=0, max_value=255)


class TestAddressArithmetic:
    @given(vas)
    def test_indices_reconstruct_va(self, va):
        rebuilt = va & ((1 << PAGE_SHIFT) - 1)
        for level in range(1, 5):
            rebuilt |= pt_index(va, level) << level_shift(level)
        assert rebuilt == va

    @given(vas, st.integers(min_value=1, max_value=4))
    def test_index_is_nine_bits(self, va, level):
        assert 0 <= pt_index(va, level) < (1 << LEVEL_BITS)


class TestFrameAllocator:
    @given(st.lists(st.booleans(), max_size=200))
    def test_never_double_allocates(self, ops):
        allocator = FrameAllocator(64)
        live = set()
        for is_alloc in ops:
            if is_alloc:
                if allocator.available == 0:
                    continue
                frame = allocator.alloc()
                assert frame not in live
                live.add(frame)
            elif live:
                frame = live.pop()
                allocator.free(frame)
        assert allocator.allocated == len(live)


@st.composite
def pt_ops(draw):
    """A sequence of (op, vpn) page-table operations."""
    return draw(st.lists(
        st.tuples(st.sampled_from(["map", "unmap", "protect"]), small_vpns),
        max_size=60,
    ))


class TestPageTableModel:
    @settings(max_examples=50, deadline=None)
    @given(pt_ops())
    def test_matches_dict_model(self, ops):
        mem = PhysicalMemory(4096)
        table = PageTable(mem)
        model = {}
        next_frame = 1000
        for op, vpn in ops:
            va = vpn << PAGE_SHIFT
            if op == "map":
                table.map(va, next_frame)
                model[vpn] = next_frame
                next_frame += 1
            elif op == "unmap":
                table.unmap(va)
                model.pop(vpn, None)
            else:
                table.set_flags(va, writable=False)
        for vpn in range(256):
            translated = table.translate(vpn << PAGE_SHIFT)
            if vpn in model:
                assert translated is not None
                assert translated[0] == model[vpn]
            else:
                assert translated is None

    @settings(max_examples=30, deadline=None)
    @given(pt_ops())
    def test_leaf_iteration_matches_model(self, ops):
        mem = PhysicalMemory(4096)
        table = PageTable(mem)
        model = {}
        for op, vpn in ops:
            va = vpn << PAGE_SHIFT
            if op == "map":
                table.map(va, vpn + 1)
                model[vpn] = vpn + 1
            elif op == "unmap":
                table.unmap(va)
                model.pop(vpn, None)
        leaves = {va >> PAGE_SHIFT: pte.frame for va, pte, _ in table.iter_leaves()}
        assert leaves == model

    @settings(max_examples=30, deadline=None)
    @given(pt_ops())
    def test_destroy_frees_all_frames(self, ops):
        mem = PhysicalMemory(4096)
        table = PageTable(mem)
        for op, vpn in ops:
            va = vpn << PAGE_SHIFT
            if op == "map":
                table.map(va, 0)
            elif op == "unmap":
                table.unmap(va)
        table.destroy()
        assert mem.allocator.allocated == 0


@st.composite
def tlb_ops(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["insert", "lookup", "inv_page", "flush"]),
            small_vpns,
        ),
        max_size=80,
    ))


class TestTLBFreshness:
    @settings(max_examples=50, deadline=None)
    @given(tlb_ops())
    def test_never_returns_stale_entries(self, ops):
        from repro.hw.tlb import TLB, TLBEntry

        tlb = TLB(entries=16, ways=4, page_shift=12)
        # vpn -> last inserted frame (None after invalidation).
        model = {}
        version = 0
        for op, vpn in ops:
            va = vpn << 12
            if op == "insert":
                version += 1
                tlb.insert(TLBEntry(1, vpn, version, 12, True, True))
                model[vpn] = version
            elif op == "lookup":
                entry = tlb.lookup(1, va)
                if entry is not None:
                    # A hit must reflect the most recent insert.
                    assert model.get(vpn) == entry.frame
            elif op == "inv_page":
                tlb.invalidate_page(1, va)
                model.pop(vpn, None)
            else:
                tlb.flush()
                model.clear()


class TestAgileWalkCostLaw:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=(1 << 27) - 1),
    )
    def test_refs_equals_4_plus_4d(self, degree, vpn):
        """For any VA and any switching level: refs = 4 + 4d."""
        import sys, os

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from helpers import TwoLevelSetup
        from repro.hw.walker import PageWalker

        va = vpn << 12
        setup = TwoLevelSetup()
        setup.map_guest(va)
        setup.build_full_shadow()
        walker = PageWalker(setup.host_mem, setup.guest_mem)
        if degree == 4:
            ctx = setup.agile_ctx(root_switch=True)
        else:
            if degree:
                setup.set_switching(va, degree + 1)
            ctx = setup.agile_ctx()
        result = walker.agile_walk(va, ctx)
        assert result.refs == 4 + 4 * degree
        assert result.nested_levels == degree


@st.composite
def guest_activity(draw):
    """Random guest memory activity: page indices + op kinds."""
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["write", "read", "unmap", "protect", "remap"]),
            st.integers(min_value=0, max_value=63),
        ),
        min_size=1,
        max_size=60,
    ))


class TestShadowCoherence:
    @settings(max_examples=25, deadline=None)
    @given(guest_activity())
    def test_shadow_equals_composed_translation(self, activity):
        """After arbitrary guest activity under shadow paging, every
        mapped VA translates to hPT(gPT(va)) through the hardware."""
        from repro.common.config import sandy_bridge_config
        from repro.core.machine import System
        from repro.core.simulator import MachineAPI

        system = System(sandy_bridge_config(mode="shadow"))
        api = MachineAPI(system)
        api.spawn()
        base = api.mmap(64 << 12)
        proc = system.kernel.current
        for op, page in activity:
            va = base + page * 4096
            mapped = proc.page_table.translate(va) is not None
            if op == "write":
                api.write(va)
            elif op == "read":
                api.read(va)
            elif op == "unmap" and mapped:
                proc.page_table.unmap(va)
                system.invlpg(proc, va)
                proc.resident_pages -= 1
            elif op == "protect" and mapped:
                proc.page_table.set_flags(va, writable=False)
                system.invlpg(proc, va)
            elif op == "remap":
                api.write(va)
        # Coherence check: hardware translation == composed translation.
        vmm = system.vmm
        for page in range(64):
            va = base + page * 4096
            guest = proc.page_table.translate(va)
            if guest is None:
                continue
            gfn = guest[0]
            outcome = api.read(va)
            expected = vmm.hostpt.translate(gfn)
            assert outcome.frame == expected
