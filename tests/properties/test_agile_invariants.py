"""Property-based tests for agile-paging-specific invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.vmm.shadowmgr import NODE_NESTED, NODE_SHADOW


@st.composite
def agile_activity(draw):
    """Random guest activity plus random direct mode-switch requests."""
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["write", "read", "switch", "revert", "tick"]),
            st.integers(min_value=0, max_value=63),
        ),
        min_size=1,
        max_size=50,
    ))


def _build():
    system = System(sandy_bridge_config(mode="agile"))
    api = MachineAPI(system)
    proc = api.spawn()
    base = api.mmap(64 << 12)
    manager = system.vmm.states[proc.pid].manager
    return system, api, proc, manager, base


class TestAgileCoherence:
    @settings(max_examples=25, deadline=None)
    @given(agile_activity())
    def test_translation_correct_under_any_mode_churn(self, activity):
        """No interleaving of accesses, policy-driven switches, manual
        switches/reverts, and ticks may ever produce a wrong
        translation."""
        system, api, proc, manager, base = _build()
        for op, page in activity:
            va = base + page * 4096
            if op == "write":
                api.write(va)
            elif op == "read":
                api.read(va)
            elif op == "switch":
                gfns = [g for g, m in manager.node_meta.items()
                        if m.mode == NODE_SHADOW]
                if gfns:
                    manager.switch_to_nested(gfns[page % len(gfns)])
            elif op == "revert":
                for gfn in manager.nested_node_gfns():
                    meta = manager.node_meta[gfn]
                    parent_ok = (gfn == manager.root_gfn or
                                 manager.node_meta[meta.parent_gfn].mode
                                 == NODE_SHADOW)
                    if parent_ok:
                        manager.revert_to_shadow(gfn)
                        break
            elif op == "tick":
                system.vmm.policy_tick()
        # Invariant: every mapped page translates to hPT(gPT(va)).
        for page in range(64):
            va = base + page * 4096
            translated = proc.page_table.translate(va)
            if translated is None:
                continue
            outcome = api.read(va)
            assert outcome.frame == system.vmm.hostpt.translate(translated[0])

    @settings(max_examples=25, deadline=None)
    @given(agile_activity())
    def test_mode_map_matches_switching_bits(self, activity):
        """A shadow-covered node is never reachable through a switching
        bit, and nested nodes are never write-protected (writes to them
        never trap)."""
        system, api, proc, manager, base = _build()
        for op, page in activity:
            va = base + page * 4096
            if op == "write":
                api.write(va)
            elif op == "read":
                api.read(va)
            elif op == "tick":
                system.vmm.policy_tick()
        # Collect every switching entry in the shadow table.
        switch_targets = set()
        for node in manager.spt.iter_nodes():
            for _index, spte in node.present_items():
                if spte.switching:
                    switch_targets.add(spte.frame)
        for gfn in switch_targets:
            assert manager.node_meta[gfn].mode == NODE_NESTED
        # Writes to nested nodes must be direct (no PT_WRITE trap).
        nested = manager.nested_node_gfns()
        if nested:
            target = nested[-1]
            node = manager._guest_node(target)
            before = system.vmm.traps.count("pt_write")
            items = list(node.present_items())
            if items:
                index, pte = items[0]
                replacement = pte.copy()
                proc.page_table._write_entry(node, index, replacement)
                assert system.vmm.traps.count("pt_write") == before
