"""Property-based tests for agile-paging-specific invariants.

Guest histories are seeded :mod:`repro.fuzz.scenario` programs run
through the fuzzer's own :class:`~repro.fuzz.oracle.ScenarioRunner`, so
these property tests and the fuzz campaigns exercise one shared scenario
space: a bug either suite can express, the other can replay. Hypothesis
only draws the (seed, profile, ops) triple — exactly what names a fuzz
case — so every counterexample it shrinks to is a ready-made corpus
entry.
"""

from hypothesis import given, settings, strategies as st

from repro.fuzz.oracle import ScenarioRunner, build_system
from repro.fuzz.scenario import PROFILES, ScenarioGenerator
from repro.vmm.shadowmgr import NODE_NESTED, NODE_SHADOW

PROFILE_NAMES = sorted(PROFILES)


@st.composite
def scenarios(draw, max_ops=60):
    """A seeded scenario program, as a fuzz campaign would name it."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    profile = draw(st.sampled_from(PROFILE_NAMES))
    ops = draw(st.integers(min_value=1, max_value=max_ops))
    return ScenarioGenerator(profile).generate(seed=seed, ops=ops)


def _run(scenario, mode="agile"):
    """Replay ``scenario`` on one machine (paranoid, so the PR 1
    invariant suite fires after every trap along the way)."""
    runner = ScenarioRunner(build_system(mode))
    runner.run(scenario)
    return runner


class TestAgileCoherence:
    @settings(max_examples=25, deadline=None)
    @given(scenarios())
    def test_translation_correct_under_any_history(self, scenario):
        """No generated interleaving of guest activity and policy-driven
        mode churn may ever produce a wrong translation: every mapped
        page must read back as hPT(gPT(va))."""
        runner = _run(scenario)
        vmm = runner.system.vmm
        for proc in runner.procs:
            targets = [(va, pte.frame)
                       for va, pte, _level in proc.page_table.iter_leaves()
                       if pte.present]
            if not targets:
                continue
            runner.api.switch_to(proc)
            for va, gfn in targets:
                outcome = runner.api.read(va)
                # Translate after the read: the read itself may
                # demand-fault the host mapping into existence.
                assert outcome.frame == vmm.hostpt.translate(gfn)

    @settings(max_examples=25, deadline=None)
    @given(scenarios())
    def test_mode_map_matches_switching_bits(self, scenario):
        """A shadow-covered node is never reachable through a switching
        bit, and nested nodes are never write-protected (writes to them
        never trap)."""
        runner = _run(scenario)
        system = runner.system
        for proc in runner.procs:
            manager = system.vmm.states[proc.pid].manager
            # Every switching entry must point at a nested-mode node.
            switch_targets = set()
            for node in manager.spt.iter_nodes():
                for _index, spte in node.present_items():
                    if spte.switching:
                        switch_targets.add(spte.frame)
            for gfn in switch_targets:
                assert manager.node_meta[gfn].mode == NODE_NESTED
            # Writes to nested nodes must be direct (no PT_WRITE trap).
            nested = manager.nested_node_gfns()
            if not nested:
                continue
            node = manager._guest_node(nested[-1])
            items = list(node.present_items())
            if not items:
                continue
            before = system.vmm.traps.count("pt_write")
            index, pte = items[0]
            proc.page_table._write_entry(node, index, pte.copy())
            assert system.vmm.traps.count("pt_write") == before

    @settings(max_examples=10, deadline=None)
    @given(scenarios(max_ops=40))
    def test_shadow_covered_nodes_are_mediated(self, scenario):
        """Dual of the nested direct-write check: a guest PT update to a
        shadow-mode node must be mediated (one PT_WRITE trap), else the
        shadow table would silently go stale (Section III-A)."""
        runner = _run(scenario)
        system = runner.system
        for proc in runner.procs:
            manager = system.vmm.states[proc.pid].manager
            if manager.fully_nested:
                continue
            shadow = [g for g, m in manager.node_meta.items()
                      if m.mode == NODE_SHADOW]
            if not shadow:
                continue
            node = manager._guest_node(shadow[-1])
            items = list(node.present_items())
            if not items:
                continue
            before = system.vmm.traps.count("pt_write")
            index, pte = items[0]
            proc.page_table._write_entry(node, index, pte.copy())
            assert system.vmm.traps.count("pt_write") == before + 1
