"""Unit tests for the address-stream generators."""

import numpy as np
import pytest

from repro.workloads.generators import (
    MixtureSampler,
    PointerChase,
    SequentialScanner,
    UniformSampler,
    ZipfSampler,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestUniform:
    def test_in_range(self, rng):
        sampler = UniformSampler(100, rng)
        samples = sampler.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_covers_space(self, rng):
        sampler = UniformSampler(10, rng)
        assert len(set(sampler.sample(1000).tolist())) == 10

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            UniformSampler(0, rng)


class TestZipf:
    def test_in_range(self, rng):
        sampler = ZipfSampler(100, rng, alpha=1.0)
        samples = sampler.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_skew(self, rng):
        sampler = ZipfSampler(1000, rng, alpha=1.0)
        samples = sampler.sample(20_000)
        _values, counts = np.unique(samples, return_counts=True)
        top = np.sort(counts)[::-1]
        # The most popular page should dwarf the median one.
        assert top[0] > 10 * np.median(counts)

    def test_hot_pages_scattered(self, rng):
        """The hottest page need not be page 0 (mapping is shuffled)."""
        samplers = [ZipfSampler(1000, np.random.default_rng(s)) for s in range(5)]
        hottest = set()
        for sampler in samplers:
            samples = sampler.sample(5000)
            values, counts = np.unique(samples, return_counts=True)
            hottest.add(int(values[np.argmax(counts)]))
        assert len(hottest) > 1

    def test_rejects_bad_alpha(self, rng):
        with pytest.raises(ValueError):
            ZipfSampler(10, rng, alpha=0)


class TestSequential:
    def test_visits_in_order(self):
        scanner = SequentialScanner(10)
        assert scanner.sample(5).tolist() == [0, 1, 2, 3, 4]
        assert scanner.sample(5).tolist() == [5, 6, 7, 8, 9]

    def test_wraps(self):
        scanner = SequentialScanner(4)
        assert scanner.sample(6).tolist() == [0, 1, 2, 3, 0, 1]

    def test_stride(self):
        scanner = SequentialScanner(10, stride=3)
        assert scanner.sample(4).tolist() == [0, 3, 6, 9]

    def test_start_offset(self):
        scanner = SequentialScanner(10, start=7)
        assert scanner.sample(4).tolist() == [7, 8, 9, 0]


class TestPointerChase:
    def test_is_a_permutation_cycle(self, rng):
        chase = PointerChase(50, rng)
        samples = chase.sample(50)
        assert sorted(samples.tolist()) == list(range(50))

    def test_continues_across_calls(self, rng):
        chase = PointerChase(50, rng)
        first = chase.sample(25).tolist()
        second = chase.sample(25).tolist()
        assert sorted(first + second) == list(range(50))

    def test_deterministic_per_seed(self):
        a = PointerChase(50, np.random.default_rng(1)).sample(20).tolist()
        b = PointerChase(50, np.random.default_rng(1)).sample(20).tolist()
        assert a == b


class TestMixture:
    def test_respects_ranges(self, rng):
        mixture = MixtureSampler(
            [UniformSampler(10, rng), UniformSampler(1000, rng)],
            weights=[0.5, 0.5],
            rng=rng,
        )
        samples = mixture.sample(2000)
        assert samples.max() < 1000

    def test_weights_bias_choice(self, rng):
        hot = UniformSampler(10, rng)
        cold = UniformSampler(1000, rng)
        mixture = MixtureSampler([hot, cold], weights=[0.95, 0.05], rng=rng)
        samples = mixture.sample(10_000)
        hot_fraction = np.mean(samples < 10)
        assert hot_fraction > 0.9

    def test_rejects_mismatch(self, rng):
        with pytest.raises(ValueError):
            MixtureSampler([UniformSampler(10, rng)], weights=[0.5, 0.5], rng=rng)
