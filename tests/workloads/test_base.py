"""Unit tests for the Workload base class helpers."""

import numpy as np
import pytest

from repro.common.config import sandy_bridge_config
from repro.common.params import TWO_MB
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.workloads.base import Workload


class Probe(Workload):
    name = "probe"

    def execute(self, api):
        pass


@pytest.fixture
def api():
    system = System(sandy_bridge_config(mode="native"))
    machine = MachineAPI(system)
    machine.spawn(code_pages=0)
    return machine


class TestHelpers:
    def test_pages_for_rounds_up_to_one(self):
        workload = Probe()
        assert workload.pages_for(1) == 1
        assert workload.pages_for(8192) == 2

    def test_granule_follows_page_size(self):
        assert Probe().granule == 4096
        assert Probe(page_size=TWO_MB).granule == 2 << 20

    def test_reset_restores_rng(self):
        workload = Probe(seed=7)
        first = workload.rng.integers(0, 1000, 10).tolist()
        workload.reset()
        second = workload.rng.integers(0, 1000, 10).tolist()
        assert first == second

    def test_region_access_reads(self, api):
        workload = Probe()
        base = api.mmap(4 << 12)
        for i in range(4):
            api.write(base + i * 4096)
        ops_before = api.system.ops
        workload.region_access(api, base, np.array([0, 1, 2, 3]))
        assert api.system.ops == ops_before + 4
        assert api.system.writes == 4  # only the setup writes

    def test_region_access_write_mask(self, api):
        workload = Probe()
        base = api.mmap(4 << 12)
        workload.region_access(api, base, np.array([0, 1, 2, 3]),
                               write_mask=np.array([True, False, True, False]))
        assert api.system.writes == 2
        assert api.system.reads == 2

    def test_warm_region_touches_every_page(self, api):
        workload = Probe()
        base = api.mmap(16 << 12)
        workload.warm_region(api, base, 16)
        proc = api.current
        assert proc.resident_pages == 16

    def test_repr(self):
        assert "Probe(ops=" in repr(Probe(ops=5, seed=3))
