"""Tests for the Table V workload suite."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.common.params import TWO_MB
from repro.core.simulator import run_workload
from repro.workloads.suite import PAPER_FOOTPRINTS, SUITE, make_suite

OPS = 6_000  # small but enough to exercise every phase


class TestSuiteConstruction:
    def test_eight_workloads(self):
        assert len(SUITE) == 8
        names = {cls.name for cls in SUITE}
        assert names == {
            "memcached", "canneal", "astar", "gcc",
            "graph500", "mcf", "tigr", "dedup",
        }

    def test_paper_footprints_complete(self):
        assert set(PAPER_FOOTPRINTS) == {cls.name for cls in SUITE}

    def test_make_suite_subset(self):
        subset = make_suite(ops=10, names={"mcf", "tigr"})
        assert {w.name for w in subset} == {"mcf", "tigr"}

    def test_make_suite_page_size(self):
        [workload] = make_suite(ops=10, page_size=TWO_MB, names={"astar"})
        assert workload.page_size is TWO_MB


@pytest.mark.parametrize("cls", SUITE, ids=lambda c: c.name)
class TestEachWorkload:
    def test_runs_under_agile(self, cls):
        metrics = run_workload(cls(ops=OPS), sandy_bridge_config(mode="agile"))
        assert metrics.ops >= OPS
        assert metrics.label == cls.name

    def test_deterministic_op_stream(self, cls):
        first = run_workload(cls(ops=OPS), sandy_bridge_config(mode="native"))
        second = run_workload(cls(ops=OPS), sandy_bridge_config(mode="native"))
        assert first.ops == second.ops
        assert first.tlb_misses == second.tlb_misses
        assert first.total_cycles == second.total_cycles

    def test_same_ops_across_modes(self, cls):
        native = run_workload(cls(ops=OPS), sandy_bridge_config(mode="native"))
        shadow = run_workload(cls(ops=OPS), sandy_bridge_config(mode="shadow"))
        assert native.ops == shadow.ops


class TestWorkloadCharacter:
    """The qualitative profile each workload must have (Section VI)."""

    def test_mcf_is_tlb_hostile(self):
        mcf = run_workload(make_suite(ops=20_000, names={"mcf"})[0],
                           sandy_bridge_config(mode="native"))
        gcc = run_workload(make_suite(ops=20_000, names={"gcc"})[0],
                           sandy_bridge_config(mode="native"))
        assert mcf.miss_rate_per_kop > 1.5 * gcc.miss_rate_per_kop

    def test_dedup_is_trap_heavy_under_shadow(self):
        dedup = run_workload(make_suite(ops=40_000, names={"dedup"})[0],
                             sandy_bridge_config(mode="shadow"))
        canneal = run_workload(make_suite(ops=40_000, names={"canneal"})[0],
                               sandy_bridge_config(mode="shadow"))
        assert dedup.vmtraps > 5 * max(1, canneal.vmtraps)

    def test_canneal_has_static_page_tables(self):
        canneal = run_workload(make_suite(ops=20_000, names={"canneal"})[0],
                               sandy_bridge_config(mode="shadow"))
        assert canneal.trap_counts.get("pt_write", 0) == 0

    def test_2m_pages_reduce_misses(self):
        four_k = run_workload(make_suite(ops=20_000, names={"graph500"})[0],
                              sandy_bridge_config(mode="native"))
        two_m = run_workload(
            make_suite(ops=20_000, page_size=TWO_MB, names={"graph500"})[0],
            sandy_bridge_config(mode="native", page_size=TWO_MB),
        )
        assert two_m.tlb_misses < four_k.tlb_misses / 10
