"""Tests for trace recording and replay."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.workloads.suite import make_suite
from repro.workloads.trace import TraceRecorder, record, replay


def fresh_api(mode="native"):
    return MachineAPI(System(sandy_bridge_config(mode=mode)))


class TestRecorder:
    def test_records_accesses(self):
        api = fresh_api()
        recorder = TraceRecorder(api)
        recorder.spawn()
        base = recorder.mmap(4 << 12)
        recorder.write(base)
        recorder.read(base)
        kinds = [r[0] for r in recorder.records]
        assert kinds == ["P", "M", "A", "A"]

    def test_records_mmap_result(self):
        api = fresh_api()
        recorder = TraceRecorder(api)
        recorder.spawn()
        va = recorder.mmap(4 << 12)
        record_entry = recorder.records[-1]
        assert record_entry[0] == "M"
        assert record_entry[-1] == va


class TestReplay:
    def test_replay_reproduces_counts(self):
        workload = make_suite(ops=3_000, names={"gcc"})[0]
        source = System(sandy_bridge_config(mode="native"))
        records = record(workload, MachineAPI(source))

        target = System(sandy_bridge_config(mode="native"))
        replay(records, MachineAPI(target))
        assert target.ops == source.ops
        assert target.mmu.counters.tlb_misses == source.mmu.counters.tlb_misses

    def test_replay_across_modes(self):
        """The same trace runs under any paging mode (the paper's
        cross-mode comparison guarantee)."""
        workload = make_suite(ops=2_000, names={"dedup"})[0]
        source = System(sandy_bridge_config(mode="native"))
        records = record(workload, MachineAPI(source))
        for mode in ("nested", "shadow", "agile"):
            target = System(sandy_bridge_config(mode=mode))
            replay(records, MachineAPI(target))
            assert target.ops == source.ops

    def test_replay_detects_divergence(self):
        api = fresh_api()
        recorder = TraceRecorder(api)
        recorder.spawn()
        recorder.mmap(4 << 12)
        records = list(recorder.records)
        # Corrupt the recorded mmap address.
        kind, size, writable, region_kind, populate, va = records[1]
        records[1] = (kind, size, writable, region_kind, populate, va + 0x1000)
        with pytest.raises(Exception):
            replay(records, fresh_api())
