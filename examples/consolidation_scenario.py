#!/usr/bin/env python
"""Server-consolidation scenario: why one paging mode never fits all.

The paper's motivation: a consolidated host runs heterogeneous guests —
a TLB-hostile analytics job (shadow-friendly) next to a fork/COW-heavy
build server (nested-friendly). A VMM must pick one technique per
process; SHSP can flip the whole process between them over time; agile
paging mixes them *within one address space*.

This example runs both personalities under every technique, then shows
agile paging's per-process degree-of-nesting mix and where the VMtraps
went. It also demonstrates the short-lived-process policy (Section
III-C): tiny helper processes start fully nested and never pay for a
shadow table they cannot amortize.

Run:  python examples/consolidation_scenario.py
"""

from dataclasses import replace

from repro import MachineAPI, System, sandy_bridge_config
from repro.workloads.generators import PointerChase, ZipfSampler
from repro.workloads.suite import GccLike, McfLike
from repro.core.simulator import run_workload


def run_pair():
    print("Consolidated host: analytics (mcf-like) + build server (gcc-like)\n")
    header = "%-10s %-8s %12s %10s %8s" % (
        "workload", "mode", "page walk %", "VMM %", "traps")
    print(header)
    print("-" * len(header))
    for cls in (McfLike, GccLike):
        for mode in ("native", "nested", "shadow", "agile"):
            metrics = run_workload(cls(ops=30_000), sandy_bridge_config(mode=mode))
            print("%-10s %-8s %11.1f%% %9.1f%% %8d" % (
                cls.name, mode,
                100 * metrics.page_walk_overhead,
                100 * metrics.vmm_overhead,
                metrics.vmtraps,
            ))
        print()


def run_short_lived():
    print("Short-lived helper processes (Section III-C policy)\n")
    config = sandy_bridge_config(mode="agile")
    config = replace(config, policy=replace(config.policy, start_nested=True))
    system = System(config)
    api = MachineAPI(system)
    service = api.spawn()
    heap = api.mmap(8 << 20)
    chase = PointerChase(2048, __import__("numpy").random.default_rng(3))
    for index in chase.sample(2048):
        api.write(heap + int(index) * 4096)
    # Burst of tiny helpers: each lives for a handful of accesses.
    for _job in range(10):
        helper = api.spawn(code_pages=2)
        api.switch_to(helper)
        scratch = api.mmap(4 << 12)
        for i in range(4):
            api.write(scratch + i * 4096)
        api.switch_to(service)
        api.exit(helper)
    metrics = system.collect_metrics("short-lived")
    print("  VMtraps with start-nested policy: %d  %r"
          % (metrics.vmtraps, metrics.trap_counts))
    manager = system.vmm.states[service.pid].manager
    print("  long-lived service still fully nested? %s" % manager.fully_nested)
    print("  (the policy enables shadow coverage only once TLB pressure "
          "justifies it)\n")


def inspect_agile_mix():
    print("Inside one agile address space\n")
    system = System(sandy_bridge_config(mode="agile"))
    api = MachineAPI(system)
    proc = api.spawn()
    import numpy as np

    rng = np.random.default_rng(11)
    stable = api.mmap(16 << 20)  # read-mostly analytics table
    churn = api.mmap(1 << 20)  # constantly remapped buffer arena
    npages = (16 << 20) // 4096
    for i in range(npages):
        api.write(stable + i * 4096)
    hot = ZipfSampler(npages, rng)
    for _round in range(3):
        for index in hot.sample(2048):
            api.read(stable + int(index) * 4096)
    api.start_measurement()
    for _round in range(16):
        for index in hot.sample(512):
            api.read(stable + int(index) * 4096)
        # The churn arena is remapped constantly: agile should push its
        # page-table subtree to nested mode.
        api.munmap(churn, 1 << 20)
        churn = api.mmap(1 << 20)
        for i in range(8):
            api.write(churn + i * 4096)
    metrics = system.collect_metrics("mixed")
    mix = metrics.mode_mix()
    print("  miss mix: " + "  ".join("%s=%.1f%%" % (k, 100 * v)
                                     for k, v in mix.items()))
    print("  nested coverage of guest PT nodes: %.1f%%"
          % (100 * system.vmm.nested_coverage(proc)))
    print("  VMtraps: %d  %r" % (metrics.vmtraps, metrics.trap_counts))


if __name__ == "__main__":
    run_pair()
    run_short_lived()
    inspect_agile_mix()
