#!/usr/bin/env python
"""Quickstart: run one workload under all four paging techniques.

This is the 60-second tour of the library: build a Table III machine in
each paging mode, run the same deterministic workload on it, and print
the Figure 5-style overhead split. Agile paging should land at (or very
near) the best of nested and shadow for this update-heavy workload.

Run:  python examples/quickstart.py
"""

from repro import ALL_MODES, run_workload, sandy_bridge_config
from repro.workloads.suite import DedupLike


def main():
    print("Agile Paging reproduction — quickstart")
    print("workload: dedup-like (content sharing + COW breaks), 40k ops\n")
    header = "%-8s %10s %12s %12s %8s" % (
        "mode", "TLB misses", "page walk %", "VMM %", "VMtraps")
    print(header)
    print("-" * len(header))
    totals = {}
    for mode in ALL_MODES:
        metrics = run_workload(DedupLike(ops=40_000),
                               sandy_bridge_config(mode=mode))
        totals[mode] = metrics.page_walk_overhead + metrics.vmm_overhead
        print("%-8s %10d %11.1f%% %11.1f%% %8d" % (
            mode,
            metrics.tlb_misses,
            100 * metrics.page_walk_overhead,
            100 * metrics.vmm_overhead,
            metrics.vmtraps,
        ))
    best = min(totals["nested"], totals["shadow"])
    print("\nbest constituent total overhead: %5.1f%%" % (100 * best))
    print("agile paging total overhead:     %5.1f%%" % (100 * totals["agile"]))
    if totals["agile"] <= best:
        print("=> agile paging meets or beats the best of both (the paper's claim)")


if __name__ == "__main__":
    main()
