#!/usr/bin/env python
"""Tuning the agile-paging policies, with multi-seed error bars.

Section III-C leaves two knobs open: the shadow=>nested write threshold
("a small threshold like the one used in branch predictors") and the
reversion policy. This example sweeps both on the memcached-like
workload and uses the multi-seed statistics helpers to show the
orderings are stable, not single-seed luck.

Run:  python examples/policy_tuning.py
"""

from dataclasses import replace

from repro import sandy_bridge_config
from repro.analysis.stats import compare_modes, ordering_confidence
from repro.workloads.suite import MemcachedLike


def workload_factory(seed):
    # Enough operations to include slab-churn and eviction events.
    return MemcachedLike(ops=45_000, seed=seed)


def sweep_write_threshold():
    print("Write threshold sweep (shadow=>nested trigger)")
    print("%-12s %12s %12s %14s" % ("threshold", "total ovh", "stdev", "traps model"))
    base = sandy_bridge_config(mode="agile")
    for threshold in (1, 2, 4, 16):
        config = replace(base, policy=replace(base.policy,
                                              write_threshold=threshold))
        stats = compare_modes(workload_factory, {"agile": config},
                              seeds=(1, 2, 3))["agile"]
        traps = sum(m.vmtraps for m in stats.runs) / len(stats.runs)
        print("%-12d %11.1f%% %11.3f%% %14.1f" % (
            threshold, 100 * stats.total.mean, 100 * stats.total.stdev, traps))
    print("(threshold=2 is the paper's choice: eager enough to kill the\n"
          " write storms, lazy enough not to nest on one-off updates)\n")


def compare_reversion_policies():
    print("Reversion policy comparison (nested=>shadow)")
    base = sandy_bridge_config(mode="agile")
    configs = {
        name: replace(base, policy=replace(base.policy, revert_policy=name))
        for name in ("dirty", "simple", "none")
    }
    results = compare_modes(workload_factory, configs, seeds=(1, 2, 3))
    print("%-8s %12s %16s" % ("policy", "total ovh", "misses/kop"))
    for name, stats in results.items():
        print("%-8s %11.1f%% %15.1f" % (
            name, 100 * stats.total.mean, stats.misses_per_kop.mean))
    confidence = ordering_confidence(results["dirty"], results["none"])
    print("dirty-bit beats no-reversion on %.0f%% of seeds\n"
          % (100 * confidence))


def agile_vs_constituents():
    print("Sanity: the headline ordering, with error bars")
    configs = {mode: sandy_bridge_config(mode=mode)
               for mode in ("nested", "shadow", "agile")}
    results = compare_modes(workload_factory, configs, seeds=(1, 2, 3))
    for mode, stats in results.items():
        print("  %-7s total overhead %5.1f%% ± %.2f%%"
              % (mode, 100 * stats.total.mean, 100 * stats.total.stdev))
    best = min(results["nested"].total.mean, results["shadow"].total.mean)
    print("  => agile improves on the best constituent by %.1f%%"
          % (100 * (1 + best) / (1 + results["agile"].total.mean) - 100))


if __name__ == "__main__":
    sweep_write_threshold()
    compare_reversion_policies()
    agile_vs_constituents()
