#!/usr/bin/env python
"""BadgerTrap-style TLB-miss analysis with the instrumentation hooks.

The paper's methodology (Section VI) instruments two things:

* every guest page-table update (a modified KVM + trace-cmd), via our
  ``vmm.pt_write_hook``,
* every TLB miss (BadgerTrap), via our ``mmu.miss_hook``.

This example uses both hooks on one workload to print the kind of
analysis the authors ran: where misses concentrate, which page-table
levels receive updates, and — combining the two — what fraction of
misses lands in regions with update traffic (the misses agile paging
serves in nested mode).

Run:  python examples/badgertrap_analysis.py
"""

from collections import Counter

from repro.common.config import sandy_bridge_config
from repro.common.params import level_shift
from repro.core.machine import System
from repro.core.simulator import Simulator
from repro.workloads.suite import MemcachedLike


def main():
    system = System(sandy_bridge_config(mode="shadow"))

    miss_events = []

    def badgertrap(va, walk):
        miss_events.append((va >> 12, system.clock.now))

    update_levels = Counter()
    update_events = []

    def pt_trace(node, leaf_va, now):
        update_events.append((node.level, leaf_va, now))

    system.mmu.miss_hook = badgertrap
    system.vmm.pt_write_hook = pt_trace

    print("Running memcached-like workload under shadow paging with")
    print("BadgerTrap-style miss tracing and a KVM-style PT-update trace...\n")
    metrics = Simulator(system).run(MemcachedLike(ops=60_000))

    # Steady state only: ignore the warmup's demand-fault storm, as the
    # paper's multi-minute runs amortize it.
    start = system._measurement_start
    miss_pages = Counter()
    for vpn, now in miss_events:
        if now >= start:
            miss_pages[vpn] += 1
    miss_count = [sum(miss_pages.values())]
    updated_l1_regions = set()
    for level, leaf_va, now in update_events:
        if now < start:
            continue
        update_levels[level] += 1
        if level == 1 and leaf_va is not None:
            updated_l1_regions.add(leaf_va >> level_shift(2))

    print("== TLB miss profile ==")
    print("total misses traced: %d" % miss_count[0])
    hottest = miss_pages.most_common(5)
    for vpn, count in hottest:
        print("  vpn %#14x: %5d misses" % (vpn, count))
    top100 = sum(count for _vpn, count in miss_pages.most_common(100))
    if miss_count[0]:
        print("top-100 pages cover %.1f%% of misses"
              % (100.0 * top100 / miss_count[0]))

    print("\n== Page-table update profile ==")
    for level in sorted(update_levels, reverse=True):
        print("  level %d (L%d nodes): %d mediated updates"
              % (level, level, update_levels[level]))
    print("distinct 2MB regions with leaf updates: %d" % len(updated_l1_regions))

    print("\n== Step-2 style classification ==")
    dynamic = sum(
        count for vpn, count in miss_pages.items()
        if (vpn << 12) >> level_shift(2) in updated_l1_regions
    )
    if miss_count[0]:
        frac = 100.0 * dynamic / miss_count[0]
        print("misses inside update-heavy regions: %.1f%%" % frac)
        print("=> under agile paging those would be served in nested mode;")
        print("   the remaining %.1f%% keep native-speed shadow walks."
              % (100.0 - frac))
    print("\nmeasured shadow-paging overheads: walk %.1f%%, VMM %.1f%%"
          % (100 * metrics.page_walk_overhead, 100 * metrics.vmm_overhead))


if __name__ == "__main__":
    main()
