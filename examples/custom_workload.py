#!/usr/bin/env python
"""Writing your own workload against the public API.

A workload is plain Python programmed against
:class:`repro.core.simulator.MachineAPI`: spawn processes, mmap memory,
issue reads/writes, fork, dedup, reclaim. This example builds a small
"web server" — a request loop over session state with periodic
log-buffer rotation — and inspects how the agile VMM classifies its
page tables.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import Workload, run_workload, sandy_bridge_config
from repro.workloads.generators import ZipfSampler


class WebServerLike(Workload):
    """Zipf-hot session lookups + a rotating log buffer."""

    name = "webserver"
    description = "request loop with hot sessions and log rotation"

    def __init__(self, ops=30_000, seed=7, sessions_mb=16, log_pages=8):
        super().__init__(ops=ops, seed=seed)
        self.sessions_mb = sessions_mb
        self.log_pages = log_pages

    def execute(self, api):
        self.reset()
        api.spawn()
        npages = self.pages_for(self.sessions_mb << 20)
        sessions = api.mmap(npages * self.granule, kind="sessions")
        log = api.mmap(self.log_pages * self.granule, kind="log")
        # Fault everything in, then measure steady state.
        self.warm_region(api, sessions, npages, write=True)
        self.warm_region(api, log, self.log_pages, write=True)
        api.start_measurement()
        # Highly skewed: most requests hit a TLB-resident session core.
        lookup = ZipfSampler(npages, self.rng, alpha=1.4)
        done = 0
        log_cursor = 0
        while done < self.ops:
            for index in lookup.sample(256):
                api.read(sessions + int(index) * self.granule)
                done += 1
            # Every request batch appends to the log (a hot, dirty page).
            api.write(log + (log_cursor % self.log_pages) * self.granule)
            done += 1
            if done % 8192 < 257:
                # Log rotation: remap the buffer (page-table updates!).
                api.munmap(log, self.log_pages * self.granule)
                log = api.mmap(self.log_pages * self.granule, kind="log")
                for i in range(self.log_pages):
                    api.write(log + i * self.granule)
                    done += 1
                log_cursor = 0
            log_cursor += 1


def main():
    workload = WebServerLike()
    print("Custom workload:", workload.name, "—", workload.description)
    for mode in ("shadow", "agile"):
        metrics = run_workload(WebServerLike(), sandy_bridge_config(mode=mode))
        print("\n%s paging:" % mode)
        print("  TLB misses:        %d" % metrics.tlb_misses)
        print("  avg refs per miss: %.2f" % metrics.avg_refs_per_miss)
        print("  VMtraps:           %d  %r" % (metrics.vmtraps, metrics.trap_counts))
        print("  page-walk overhead: %.1f%%" % (100 * metrics.page_walk_overhead))
        print("  VMM overhead:       %.1f%%" % (100 * metrics.vmm_overhead))
        if mode == "agile":
            mix = metrics.mode_mix()
            print("  miss mix by mode:  "
                  + "  ".join("%s=%.1f%%" % (k, 100 * v) for k, v in mix.items()))


if __name__ == "__main__":
    main()
